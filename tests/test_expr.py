"""Expression evaluation and static-analysis tests."""

import math

import pytest

from repro.errors import BindError, ExecutionError
from repro.lang import expr as E
from repro.lang.parser import parse_condition

from tests.conftest import make_series


def evaluate(text, series, start, end, variable=None, refs=None,
             params=None):
    cond = parse_condition(text, params=params)
    ctx = E.EvalContext(series, start, end, variable=variable, refs=refs)
    return E.evaluate(cond, ctx)


class TestEvaluation:
    def test_first_last(self):
        series = make_series([10, 20, 30, 40])
        assert evaluate("first(val)", series, 1, 3) == 20
        assert evaluate("last(val)", series, 1, 3) == 40

    def test_bare_column_is_last_value(self):
        series = make_series([10, 20, 30])
        assert evaluate("val", series, 0, 2) == 30

    def test_arithmetic(self):
        series = make_series([2, 4])
        assert evaluate("last(val) / first(val) + 1", series, 0, 1) == 3.0

    def test_division_by_zero_is_inf(self):
        series = make_series([0, 4])
        assert evaluate("last(val) / first(val)", series, 0, 1) == math.inf

    def test_comparisons(self):
        series = make_series([1, 5])
        assert evaluate("last(val) > first(val)", series, 0, 1) is True
        assert evaluate("last(val) <= 4", series, 0, 1) is False

    def test_between_inclusive(self):
        series = make_series([1, 2, 3])
        assert evaluate("last(tstamp) - first(tstamp) BETWEEN 2 AND 2",
                        series, 0, 2) is True

    def test_boolean_short_circuit(self):
        series = make_series([1, 2])
        # The right side would divide by zero on a single point; AND must
        # short-circuit on the false left side.
        result = evaluate("false AND 1 / 0 > 1", series, 0, 0)
        assert result is False

    def test_not(self):
        series = make_series([1, 2])
        assert evaluate("NOT last(val) > 10", series, 0, 1) is True

    def test_aggregate_call(self):
        series = make_series([1, 2, 3, 4])
        value = evaluate("linear_reg_r2(tstamp, val)", series, 0, 3)
        assert value == pytest.approx(1.0)

    def test_string_equality(self):
        import numpy as np
        series = make_series([1, 2], extra={
            "name": np.asarray(["x", "y"], dtype=object)})
        assert evaluate("name = 'y'", series, 0, 1) is True

    def test_reference_resolution(self):
        series = make_series([1, 2, 3, 4, 5, 6])
        value = evaluate("corr(X.val, UP.val)", series, 3, 5, variable="X",
                         refs={"UP": (0, 2)})
        assert value == pytest.approx(1.0)

    def test_missing_reference_raises(self):
        series = make_series([1, 2, 3])
        with pytest.raises(ExecutionError):
            evaluate("first(GHOST.val)", series, 0, 1, variable="X",
                     refs={})

    def test_unbound_param_raises(self):
        series = make_series([1])
        with pytest.raises(ExecutionError):
            evaluate(":x > 1", series, 0, 0)

    def test_window_call_cannot_evaluate(self):
        series = make_series([1, 2])
        with pytest.raises(ExecutionError):
            evaluate("window(1, 5)", series, 0, 1)

    def test_condition_none_is_true(self):
        series = make_series([1])
        ctx = E.EvalContext(series, 0, 0)
        assert E.evaluate_condition(None, ctx) is True

    def test_interval_converts_to_series_units(self):
        series = make_series([1, 2], time_unit="HOUR")
        value = evaluate("INTERVAL '2' DAY", series, 0, 1)
        assert value == 48.0

    def test_interval_native_unit(self):
        series = make_series([1, 2], time_unit="DAY")
        assert evaluate("INTERVAL '5' DAY", series, 0, 1) == 5.0

    def test_truthiness_of_numeric_condition(self):
        series = make_series([1, 2, 1])
        # equal_up_down_ticks returns 1.0/0.0; bare call used as condition.
        cond = parse_condition("equal_up_down_ticks(val)")
        ctx = E.EvalContext(series, 0, 2)
        assert E.evaluate_condition(cond, ctx) is True


class TestTruthy:
    @pytest.mark.parametrize("value,expected", [
        (True, True), (False, False), (1, True), (0, False),
        (0.0, False), (2.5, True), ("", False), ("x", True),
        (float("nan"), False),
    ])
    def test_values(self, value, expected):
        assert E.truthy(value) is expected


class TestAnalysis:
    def test_referenced_variables(self):
        cond = parse_condition("corr(X.v, UP.v) > 0.5 AND first(W.v) < 1")
        assert E.referenced_variables(cond) == frozenset({"X", "UP", "W"})

    def test_external_references_excludes_self(self):
        cond = parse_condition("corr(X.v, UP.v) > 0.5")
        assert E.external_references(cond, "X") == frozenset({"UP"})

    def test_aggregate_calls(self):
        cond = parse_condition("sum(a) > 1 AND avg(b) < 2")
        assert [c.name for c in E.aggregate_calls(cond)] == ["sum", "avg"]

    def test_columns_used(self):
        cond = parse_condition("last(X.p) - first(q) > r")
        assert E.columns_used(cond) == frozenset({"p", "q", "r"})

    def test_parameters_used(self):
        cond = parse_condition("a > :x AND b < :y")
        assert E.parameters_used(cond) == frozenset({"x", "y"})

    def test_substitute_params(self):
        cond = parse_condition("a > :x")
        bound = E.substitute_params(cond, {"x": 3})
        assert E.parameters_used(bound) == frozenset()

    def test_substitute_missing_param_raises(self):
        cond = parse_condition("a > :x")
        with pytest.raises(BindError):
            E.substitute_params(cond, {})

    def test_rename_variable(self):
        cond = parse_condition("first(U.v) > last(U.v)")
        renamed = E.rename_variable(cond, "U", "UU")
        assert E.referenced_variables(renamed) == frozenset({"UU"})

    def test_split_and_conjoin(self):
        cond = parse_condition("a > 1 AND b > 2 AND c > 3")
        conjuncts = E.split_conjuncts(cond)
        assert len(conjuncts) == 3
        rebuilt = E.conjoin(conjuncts)
        assert E.split_conjuncts(rebuilt) == conjuncts

    def test_split_true_is_empty(self):
        assert E.split_conjuncts(E.Literal(True)) == []
        assert E.conjoin([]) is None
