"""Hand-computed semantics checks against the brute-force matcher.

These tests pin down the *meaning* of the language on tiny series where
expected matches can be derived by hand; every executor is separately
tested for agreement with the brute-force matcher, so these tests anchor
the whole system's semantics.
"""

import pytest

from repro.core.bruteforce import BruteForceMatcher
from repro.errors import PlanError
from repro.lang.query import compile_query

from tests.conftest import make_series


def matches(text, values, params=None, timestamps=None):
    query = compile_query(text, params)
    series = make_series(values, timestamps=timestamps)
    return sorted(BruteForceMatcher(query).match_series(series))


class TestPointPatterns:
    def test_single_point_variable(self):
        got = matches("ORDER BY t\nPATTERN (A)\nDEFINE A AS val > 2",
                      [1, 3, 2, 5])
        assert got == [(1, 1), (3, 3)]

    def test_point_concatenation_is_disjoint(self):
        got = matches("ORDER BY t\nPATTERN (A B)\n"
                      "DEFINE A AS val < 2, B AS val > 2",
                      [1, 3, 1, 1, 5])
        assert got == [(0, 1), (3, 4)]

    def test_point_kleene_plus(self):
        got = matches("ORDER BY t\nPATTERN (A+) & WIN\n"
                      "DEFINE A AS val > 2, SEGMENT WIN AS window(0, 10)",
                      [1, 3, 4, 1])
        assert got == [(1, 1), (1, 2), (2, 2)]

    def test_point_alternation(self):
        got = matches("ORDER BY t\nPATTERN (A | B)\n"
                      "DEFINE A AS val < 2, B AS val > 4",
                      [1, 3, 5])
        assert got == [(0, 0), (2, 2)]


class TestSegmentPatterns:
    def test_segment_condition(self):
        got = matches("ORDER BY t\nPATTERN (S)\n"
                      "DEFINE SEGMENT S AS last(S.val) - first(S.val) >= 3",
                      [1, 2, 5, 1])
        # [0,2]: 5-1=4 ok; [1,2]: 3 ok; [0,3],[1,3],[2,3]... 1-x negative.
        assert got == [(0, 2), (1, 2)]

    def test_shared_boundary_concat(self):
        # DOWN then UP share the trough point.
        got = matches(
            "ORDER BY t\nPATTERN (DN UP) & WIN\n"
            "DEFINE SEGMENT DN AS last(DN.val) < first(DN.val),\n"
            "SEGMENT UP AS last(UP.val) > first(UP.val),\n"
            "SEGMENT WIN AS window(2, 4)",
            [3, 1, 4])
        assert got == [(0, 2)]

    def test_and_same_segment(self):
        got = matches(
            "ORDER BY t\nPATTERN (A & B)\n"
            "DEFINE SEGMENT A AS last(A.val) > first(A.val),\n"
            "SEGMENT B AS last(B.val) - first(B.val) < 3",
            [1, 2, 9])
        # rising AND small rise: [0,1] rise=1 ok; [1,2] rise=7 no;
        # [0,2] rise=8 no; single points not rising.
        assert got == [(0, 1)]

    def test_not_within_window(self):
        got = matches(
            "ORDER BY t\nPATTERN (~F) & WIN\n"
            "DEFINE SEGMENT F AS last(F.val) < first(F.val),\n"
            "SEGMENT WIN AS window(1, 2)",
            [1, 2, 1])
        # windowed segments: (0,1) rising ok; (0,2) flat ok; (1,2) falls no.
        assert got == [(0, 1), (0, 2)]

    def test_wild_padding_allows_empty(self):
        # (W S): single-point W at the shared boundary acts as empty pad.
        got = matches(
            "ORDER BY t\nPATTERN (W S) & WIN\n"
            "DEFINE SEGMENT W AS true,\n"
            "SEGMENT S AS last(S.val) - first(S.val) >= 2,\n"
            "SEGMENT WIN AS window(1, 3)",
            [1, 3, 0, 2])
        # S candidates: [0,1] and [2,3] (+2 each).  Padding may be empty
        # (single shared point) or extend left up to the window bound.
        assert got == [(0, 1), (0, 3), (1, 3), (2, 3)]

    def test_segment_kleene_counts(self):
        got = matches(
            "ORDER BY t\nPATTERN (UP{2}) & WIN\n"
            "DEFINE SEGMENT UP AS last(UP.val) > first(UP.val)\n"
            "  AND window(1, null),\n"
            "SEGMENT WIN AS window(0, 10)",
            [1, 2, 3])
        # exactly two rising segments chained: [0,1]+[1,2] -> [0,2] only.
        assert got == [(0, 2)]

    def test_kleene_zero_min_rejected(self):
        with pytest.raises(PlanError):
            matches("ORDER BY t\nPATTERN (S*) & WIN\n"
                    "DEFINE SEGMENT S AS last(S.val) > 0,\n"
                    "SEGMENT WIN AS window(0, 5)", [1, 2])

    def test_time_window_on_irregular_series(self):
        got = matches(
            "ORDER BY tstamp\nPATTERN (S)\n"
            "DEFINE SEGMENT S AS window(tstamp, 0, 5, DAY)\n"
            "  AND last(S.val) > first(S.val)",
            [1, 2, 3, 4], timestamps=[0.0, 2.0, 9.0, 10.0])
        # duration<=5: (0,1)=2d rise; (2,3)=1d rise; (1,2)=7d too long.
        assert got == [(0, 1), (2, 3)]


class TestReferences:
    TEXT = """
    ORDER BY t
    PATTERN (UP GAP X) & WIN
    DEFINE SEGMENT UP AS last(UP.val) - first(UP.val) >= 2
        AND window(2, 2),
      SEGMENT GAP AS true,
      SEGMENT X AS corr(X.val, UP.val) >= 0.99 AND window(2, 2),
      SEGMENT WIN AS window(4, 8)
    """

    def test_reference_condition(self):
        # UP = [0,2] rising 1,2,3; X must correlate with it.
        got = matches(self.TEXT, [1, 2, 3, 9, 9, 4, 5, 6])
        assert (0, 7) in got
        # Every match must span from an UP start to an X end.
        assert all(m[0] == 0 for m in got)

    def test_bindings_exposed(self):
        query = compile_query(self.TEXT)
        series = make_series([1, 2, 3, 9, 9, 4, 5, 6])
        matcher = BruteForceMatcher(query)
        envs = matcher.bindings_for_segment(series, 0, 7)
        assert envs
        assert any(env.get("UP") == (0, 2) and env.get("X") == (5, 7)
                   for env in envs)


class TestMixedPointSegment:
    def test_point_inside_segments(self):
        # A point bridging two segments shares boundaries with both.
        got = matches(
            "ORDER BY t\nPATTERN (L P R) & WIN\n"
            "DEFINE SEGMENT L AS last(L.val) > first(L.val),\n"
            "P AS val > 4,\n"
            "SEGMENT R AS last(R.val) < first(R.val),\n"
            "SEGMENT WIN AS window(2, 4)",
            [1, 5, 2])
        # L=[0,1], P=[1,1] (5>4), R=[1,2] -> match [0,2].
        assert got == [(0, 2)]

    def test_point_gap_with_wild(self):
        got = matches(
            "ORDER BY t\nPATTERN (A W B) & WIN\n"
            "DEFINE A AS val = 1, B AS val = 9, SEGMENT W AS true,\n"
            "SEGMENT WIN AS window(0, 5)",
            [1, 0, 9, 1, 9])
        assert got == [(0, 2), (0, 4), (3, 4)]
