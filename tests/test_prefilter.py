"""Prefilter tests: extraction, the on/off parity contract, toggles,
plan-cache separation and pruning counters (docs/PREFILTER.md)."""

import math

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.datasets import load
from repro.errors import PlanError
from repro.index.summary import clear_cache
from repro.lang.query import compile_query
from repro.plan.logical import build_logical_plan
from repro.plan.prefilter import (COUNTER_KEYS, Atom, PrefilterPlan,
                                  default_enabled, extract_prefilter)
from repro.queries import get_template
from repro.queries.templates import ALL_TEMPLATES

from tests.conftest import make_series


@pytest.fixture(autouse=True)
def _fresh_index_cache():
    clear_cache()
    yield
    clear_cache()


def extract(text, params=None):
    query = compile_query(text, params)
    return extract_prefilter(query, build_logical_plan(query))


SPIKE = """
ORDER BY tstamp
PATTERN (A & W)
DEFINE
  SEGMENT A AS min(A.val) >= 90,
  SEGMENT W AS window(2, 8)
"""


class TestExtraction:
    def test_min_comparison_yields_atom_and_window(self):
        plan = extract(SPIKE)
        assert plan.eligible and plan.active and not plan.never
        assert plan.window_lo == 2 and plan.window_hi == 8
        [(atom,)] = plan.clauses
        assert atom == Atom("val", 90.0, math.inf)

    def test_point_comparison_yields_atom(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE A AS val > 5")
        [(atom,)] = plan.clauses
        assert atom.column == "val" and atom.lo == 5.0 and atom.lo_open

    def test_between_yields_closed_atom(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE A AS val BETWEEN 2 AND 4")
        [(atom,)] = plan.clauses
        assert (atom.lo, atom.hi) == (2.0, 4.0)
        assert not atom.lo_open and not atom.hi_open

    def test_conjunction_keeps_both_clauses(self):
        # CNF keeps per-clause witnesses; the cross-clause contradiction
        # is not folded (each clause still prunes independently).
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE A AS val > 5 and val < 3")
        assert plan.eligible and len(plan.clauses) == 2

    def test_empty_between_never_matches(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE A AS val BETWEEN 5 AND 3")
        assert plan.eligible and plan.never

    def test_disjunction_lowered_to_one_clause(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE A AS val < 1 or val > 9")
        [clause] = plan.clauses
        assert len(clause) == 2

    def test_count_bounds_tighten_window(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE SEGMENT A AS count(A.val) >= 4 "
                       "and count(A.val) <= 6")
        assert plan.window_lo == 3 and plan.window_hi == 5

    def test_fractional_count_equality_is_never(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE SEGMENT A AS count(A.val) = 2.5")
        assert plan.never

    def test_non_total_aggregate_is_inert(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A)\nDEFINE SEGMENT A "
                       "AS zscore_outlier(val, 3) > 2")
        assert not plan.eligible and not plan.active
        assert "not total" in plan.note

    def test_cross_variable_condition_carries_no_atom(self):
        plan = extract("ORDER BY tstamp\nPATTERN (A B)\n"
                       "DEFINE SEGMENT A AS count(A.val) >= 1,\n"
                       "  SEGMENT B AS avg(B.val) > avg(A.val)")
        assert plan.eligible
        assert not plan.clauses       # nothing local to B

    def test_synthetic_aggregates_carry_no_atom(self):
        # avg's value is not an element of the segment: no witness atom.
        plan = extract("ORDER BY tstamp\nPATTERN (A)\n"
                       "DEFINE SEGMENT A AS avg(A.val) > 100")
        assert plan.eligible and not plan.clauses

    def test_required_columns_recorded(self):
        plan = extract(SPIKE)
        assert "val" in plan.required_columns

    def test_describe_shapes(self):
        assert "clause" in extract(SPIKE).describe()
        inert = PrefilterPlan(note="why")
        assert "inert" in inert.describe()
        assert "never" in PrefilterPlan(never=True,
                                        eligible=True).describe()


class TestEngineParity:
    def _dataset(self, seed=3):
        rng = np.random.default_rng(seed)
        out = []
        for index in range(12):
            values = rng.uniform(10.0, 60.0, 160)
            if index % 4 == 0:
                at = int(rng.integers(8, 140))
                values[at:at + 5] = rng.uniform(95.0, 120.0, 5)
            out.append(make_series(values, key=(f"s{index}",)))
        return out

    def test_on_off_matches_identical(self):
        query = compile_query(SPIKE)
        series = self._dataset()
        off = TRexEngine(prefilter=False).execute_query(query, series)
        on = TRexEngine(prefilter=True).execute_query(query, series)
        assert off.matches_by_key() == on.matches_by_key()
        assert on.prefilter["series_skipped"] > 0

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_parity_across_executors(self, executor):
        query = compile_query(SPIKE)
        series = self._dataset()
        off = TRexEngine(prefilter=False).execute_query(query, series)
        on = TRexEngine(prefilter=True, executor=executor,
                        workers=2).execute_query(query, series)
        assert off.matches_by_key() == on.matches_by_key()
        assert on.prefilter["series_examined"] == len(series)

    @pytest.mark.parametrize("template", [t.name for t in ALL_TEMPLATES])
    def test_parity_over_template_corpus(self, template):
        tmpl = get_template(template)
        table = load(tmpl.dataset, num_series=2, length=40)
        query = tmpl.compile(tmpl.param_sets()[0])
        series = table.partition(query.partition_by, query.order_by)
        off = TRexEngine(prefilter=False).execute_query(query, series)
        on = TRexEngine(prefilter=True).execute_query(query, series)
        assert off.matches_by_key() == on.matches_by_key(), template
        assert off.plan_explain == on.plan_explain, template

    def test_disabled_result_is_byte_identical_shape(self):
        query = compile_query(SPIKE)
        series = self._dataset()
        result = TRexEngine(prefilter=False).execute_query(query, series)
        assert result.prefilter is None
        assert "prefilter" not in result.metrics_dict()

    def test_enabled_report_has_stable_keys(self):
        query = compile_query(SPIKE)
        result = TRexEngine(prefilter=True).execute_query(
            query, self._dataset())
        report = result.prefilter
        for key in COUNTER_KEYS:
            assert key in report
        assert report["enabled"] and report["active"]
        assert 0.0 <= report["coverage"] <= 1.0
        assert result.metrics_dict()["prefilter"] == report

    def test_inert_plan_runs_full_everywhere(self):
        # Non-total condition: the plan is inert, every series runs the
        # classic full scan and no pruning counter moves.
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (A)\nDEFINE A AS "
            "zscore_outlier(val, 3) > 2")
        series = self._dataset()
        off = TRexEngine(prefilter=False).execute_query(query, series)
        on = TRexEngine(prefilter=True).execute_query(query, series)
        assert off.matches_by_key() == on.matches_by_key()
        assert not on.prefilter["active"]
        assert on.prefilter["series_examined"] == 0

    def test_missing_column_errors_survive_pruning(self):
        # One series lacks the price column: both runs must produce the
        # same DataError record (eligibility guards skip decisions).
        query = compile_query("ORDER BY tstamp\nPATTERN (A & W)\n"
                              "DEFINE SEGMENT A AS min(A.price) >= 90,\n"
                              "  SEGMENT W AS window(2, 8)")
        rng = np.random.default_rng(5)
        good = make_series(rng.uniform(0, 50, 100),
                           extra={"price": rng.uniform(0, 50, 100)},
                           key=("good",))
        bad = make_series(rng.uniform(0, 50, 100), key=("bad",))
        for series_list in ([good, bad], [bad, good]):
            off = TRexEngine(prefilter=False, on_error="partial") \
                .execute_query(query, series_list)
            on = TRexEngine(prefilter=True, on_error="partial") \
                .execute_query(query, series_list)
            assert off.matches_by_key() == on.matches_by_key()
            assert [e.format() for e in off.errors] == \
                [e.format() for e in on.errors]
            assert len(on.errors) == 1


class TestToggle:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("TREX_PREFILTER", raising=False)
        assert default_enabled() is False
        for value in ("1", "on", "true", "YES"):
            monkeypatch.setenv("TREX_PREFILTER", value)
            assert default_enabled() is True
        monkeypatch.setenv("TREX_PREFILTER", "off")
        assert default_enabled() is False

    def test_env_enables_engine(self, monkeypatch):
        monkeypatch.setenv("TREX_PREFILTER", "1")
        result = TRexEngine().execute_query(
            compile_query(SPIKE),
            [make_series(np.zeros(100) + 5.0)])
        assert result.prefilter is not None
        assert result.prefilter["series_skipped"] == 1

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("TREX_PREFILTER", "1")
        result = TRexEngine(prefilter=False).execute_query(
            compile_query(SPIKE), [make_series(np.zeros(40))])
        assert result.prefilter is None

    def test_ctor_validates_prefilter(self):
        with pytest.raises(PlanError):
            TRexEngine(prefilter="yes")

    def test_analyze_banner_mentions_prefilter(self):
        result = TRexEngine(prefilter=True, analyze=True).execute_query(
            compile_query(SPIKE), [make_series(np.zeros(100) + 5.0)])
        assert ":: prefilter:" in result.plan_analyze


class TestPlanCacheSeparation:
    def test_on_off_use_distinct_cache_entries(self):
        from repro.core.plancache import PlanCache
        cache = PlanCache(max_entries=8)
        query = compile_query(SPIKE)
        series = [make_series(np.zeros(100) + 5.0)]
        on = TRexEngine(prefilter=True, plan_cache=cache)
        off = TRexEngine(prefilter=False, plan_cache=cache)
        on.execute_query(query, series)
        off.execute_query(query, series)
        stats = cache.counters()
        assert stats["plan_misses"] == 2       # distinct keys
        on.execute_query(query, series)
        off.execute_query(query, series)
        assert cache.counters()["plan_hits"] == 2

    def test_cached_prefilter_plan_still_prunes(self):
        from repro.core.plancache import PlanCache
        cache = PlanCache(max_entries=8)
        query = compile_query(SPIKE)
        series = [make_series(np.zeros(100) + 5.0)]
        engine = TRexEngine(prefilter=True, plan_cache=cache)
        first = engine.execute_query(query, series)
        second = engine.execute_query(query, series)
        assert first.prefilter["series_skipped"] == 1
        assert second.prefilter["series_skipped"] == 1
