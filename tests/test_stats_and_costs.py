"""Statistics sampling, plan costing and NDCG scoring tests."""

import numpy as np
import pytest

from repro.bench.ndcg import dcg, ndcg_from_times
from repro.lang.query import compile_query
from repro.optimizer.plan_coster import PlanCostEstimator
from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy
from repro.optimizer.stats import (DEFAULT_REFERENCE_SELECTIVITY,
                                   StatsCatalog, collect_stats)

from tests.conftest import make_series

QUERY = """
ORDER BY tstamp
PATTERN ((DN & W) (UP & W)) & WINDOW
DEFINE SEGMENT W AS window(2, null),
  SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.8,
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.8,
  SEGMENT WINDOW AS window(1, 12)
"""


def series_list(count=3, n=50, seed=0):
    rng = np.random.default_rng(seed)
    return [make_series(np.cumsum(rng.normal(0, 1, n)) + 50)
            for _ in range(count)]


class TestCollectStats:
    def test_selectivities_in_range(self):
        query = compile_query(QUERY)
        stats = collect_stats(query, series_list())
        for name in ("DN", "UP"):
            assert 0 < stats.selectivity(name) <= 1
        assert stats.selectivity("W") == 1.0

    def test_monotone_with_threshold(self):
        strict = compile_query(QUERY.replace("0.8", "0.99"))
        loose = compile_query(QUERY.replace("0.8", "0.1"))
        data = series_list(seed=3)
        strict_stats = collect_stats(strict, data)
        loose_stats = collect_stats(loose, data)
        assert strict_stats.selectivity("UP") <= \
            loose_stats.selectivity("UP") + 0.05

    def test_reference_condition_gets_default(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (UP G X) & WIN\n"
            "DEFINE SEGMENT UP AS last(UP.val) > 1, SEGMENT G AS true,\n"
            "SEGMENT X AS corr(X.val, UP.val) > 0.5,\n"
            "SEGMENT WIN AS window(0, 20)")
        stats = collect_stats(query, series_list())
        assert stats.selectivity("X") == DEFAULT_REFERENCE_SELECTIVITY

    def test_avg_length_positive(self):
        query = compile_query(QUERY)
        stats = collect_stats(query, series_list())
        assert stats.avg_length("DN") >= 1

    def test_deterministic_for_seed(self):
        query = compile_query(QUERY)
        data = series_list()
        a = collect_stats(query, data, seed=9)
        b = collect_stats(query, data, seed=9)
        assert a.variables == b.variables

    def test_empty_series_list(self):
        query = compile_query(QUERY)
        stats = collect_stats(query, [])
        assert stats.series_length == 0

    def test_unknown_variable_defaults(self):
        catalog = StatsCatalog(series_length=100)
        assert catalog.selectivity("GHOST") == \
            DEFAULT_REFERENCE_SELECTIVITY
        assert catalog.avg_length("GHOST") == pytest.approx(25.0)

    def test_collection_time_recorded(self):
        query = compile_query(QUERY)
        stats = collect_stats(query, series_list())
        assert stats.collection_seconds > 0


class TestPlanCostEstimator:
    def test_costs_positive_and_distinct(self):
        query = compile_query(QUERY)
        data = series_list()
        stats = collect_stats(query, data)
        estimator = PlanCostEstimator(stats, data[0])
        costs = {}
        for strategy in (RuleStrategy("left", "probe"),
                         RuleStrategy("left", "sm")):
            plan = RuleBasedPlanner(strategy).plan(query)
            costs[strategy.label] = estimator.estimate(plan)
        assert all(cost > 0 for cost in costs.values())
        assert costs["pr_left"] != costs["sm_left"]

    def test_sharing_off_plan_costs_more_for_heavy_aggregates(self):
        text = QUERY.replace("linear_reg_r2_signed", "linear_reg_r2_signed")
        query = compile_query(text)
        data = series_list()
        stats = collect_stats(query, data)
        estimator = PlanCostEstimator(stats, data[0])
        indexed = RuleBasedPlanner(RuleStrategy("left", "sm"),
                                   sharing="on").plan(query)
        direct = RuleBasedPlanner(RuleStrategy("left", "sm"),
                                  sharing="off").plan(query)
        assert estimator.estimate(indexed) < estimator.estimate(direct)


class TestNDCG:
    def test_perfect_agreement(self):
        costs = [1.0, 2.0, 3.0, 4.0]
        times = [0.1, 0.2, 0.3, 0.4]
        assert ndcg_from_times(costs, times) == pytest.approx(1.0)

    def test_reversed_is_low(self):
        costs = [4.0, 3.0, 2.0, 1.0]
        times = [0.1, 0.2, 0.3, 10.0]
        score = ndcg_from_times(costs, times)
        assert score < 0.9

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            costs = rng.uniform(1, 100, 6).tolist()
            times = rng.uniform(0.01, 10, 6).tolist()
            assert 0.0 <= ndcg_from_times(costs, times) <= 1.0

    def test_empty(self):
        assert ndcg_from_times([], []) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ndcg_from_times([1.0], [1.0, 2.0])

    def test_dcg_discounts(self):
        assert dcg([1.0, 0.0]) > dcg([0.0, 1.0])


class TestProfiler:
    def test_operator_weights_positive(self):
        from repro.optimizer.profiler import profile_operators
        weights = profile_operators(sizes=(80,))
        assert weights
        assert all(value >= 0 for value in weights.values())
        for name in ("SegGenWindow", "SortMergeConcat", "MaterializeNot"):
            assert name in weights

    def test_aggregate_weights(self):
        from repro.optimizer.profiler import profile_aggregates
        weights = profile_aggregates(names=["sum", "linear_regression_r2"],
                                     sizes=(80,))
        assert set(weights) == {"sum", "linear_regression_r2"}
        for w_ind, w_lookup, w_direct in weights.values():
            assert w_direct > 0

    def test_profile_all_returns_params(self):
        from repro.optimizer.cost_params import CostParams
        from repro.optimizer.profiler import profile_all
        params = profile_all(sizes=(60,))
        assert isinstance(params, CostParams)
        assert params.operator_weights["SegGenWindow"] > 0
