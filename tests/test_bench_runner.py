"""Tests for the experiment harness itself (repro.bench.runner)."""

import math

import pytest

from repro.bench.runner import (OptimizerComparison, format_table,
                                median_slowdowns, median_speedups,
                                run_executor_comparison,
                                run_optimizer_comparison,
                                run_sharing_ablation)
from repro.datasets import load
from repro.queries import get_template


@pytest.fixture(scope="module")
def sp500_tiny():
    return load("sp500", num_series=3, length=60)


class TestOptimizerComparison:
    def test_slowdowns_fastest_is_one(self):
        comparison = OptimizerComparison(
            {}, {"a": 2.0, "b": 1.0, "optimizer": 1.5}, {})
        slowdowns = comparison.slowdowns()
        assert slowdowns["b"] == 1.0
        assert slowdowns["a"] == 2.0

    def test_slowdowns_with_timeout(self):
        comparison = OptimizerComparison(
            {}, {"a": math.inf, "b": 2.0}, {})
        slowdowns = comparison.slowdowns()
        assert slowdowns["b"] == 1.0
        assert slowdowns["a"] == math.inf

    def test_run_produces_all_labels(self, sp500_tiny):
        template = get_template("v_shape")
        comparisons = run_optimizer_comparison(
            template, sp500_tiny, param_sets=template.param_sets()[:1])
        (comparison,) = comparisons
        assert set(comparison.times) == {
            "pr_left", "pr_right", "sm_left", "sm_right", "optimizer"}
        assert len(set(comparison.matches.values())) == 1

    def test_not_query_gets_pnot_variants(self, sp500_tiny):
        template = get_template("limit_sell")
        comparisons = run_optimizer_comparison(
            template, sp500_tiny, param_sets=template.param_sets()[:1])
        assert "pr_left_pnot" in comparisons[0].times

    def test_timeout_marks_inf(self, sp500_tiny):
        template = get_template("v_shape")
        comparisons = run_optimizer_comparison(
            template, sp500_tiny, param_sets=template.param_sets()[:2],
            timeout_seconds=1e-4)
        # Every baseline times out after its first instance.
        second = comparisons[1]
        assert all(second.times[label] == math.inf
                   for label in second.times if label != "optimizer")

    def test_median_slowdowns(self):
        comparisons = [
            OptimizerComparison({}, {"a": 1.0, "b": 2.0}, {}),
            OptimizerComparison({}, {"a": 3.0, "b": 1.0}, {}),
        ]
        medians = median_slowdowns(comparisons)
        assert medians["a"] == pytest.approx(2.0)
        assert medians["b"] == pytest.approx(1.5)


class TestExecutorComparison:
    def test_rows_and_speedups(self, sp500_tiny):
        template = get_template("v_shape")
        results = run_executor_comparison(
            template, sp500_tiny, ["trex", "zstream"],
            param_sets=template.param_sets()[:1])
        assert set(results) == {"trex", "zstream"}
        speedups = median_speedups(results, reference="trex")
        assert "zstream" in speedups and speedups["zstream"] > 0

    def test_sharing_ablation_checks_results(self, sp500_tiny):
        template = get_template("v_shape")
        speedups = run_sharing_ablation(
            template, sp500_tiny, ["trex"],
            param_sets=template.param_sets()[:1])
        assert speedups["trex"] > 0


class TestBenchArtifacts:
    def test_json_safe_replaces_inf(self):
        from repro.bench.runner import _json_safe
        data = _json_safe({"times": {"a": math.inf, "b": 1.0},
                           "rows": [math.nan, 2]})
        assert data == {"times": {"a": None, "b": 1.0},
                        "rows": [None, 2]}

    def test_write_bench_artifact(self, tmp_path):
        import json

        from repro.bench.runner import write_bench_artifact
        path = write_bench_artifact(
            str(tmp_path), "unit", {"x": math.inf, "y": [1, 2]})
        assert path.endswith("BENCH_unit.json")
        with open(path) as handle:
            assert json.load(handle) == {"x": None, "y": [1, 2]}

    def test_run_bench_smoke_emits_artifact(self, tmp_path):
        import json

        from repro.bench.runner import run_bench_smoke
        path = run_bench_smoke(str(tmp_path), num_series=2, length=50)
        assert path.endswith("BENCH_smoke_v_shape.json")
        with open(path) as handle:
            data = json.load(handle)
        assert data["benchmark"] == "smoke"
        assert data["comparisons"][0]["times"]["optimizer"] is not None
        analyze = data["analyze"]
        assert analyze["operators"], "per-operator metrics missing"
        assert "plan" in analyze
        assert "SegGen" in data["plan_analyze"]

    def test_run_bench_prefilter_emits_artifact(self, tmp_path):
        import json

        from repro.bench.runner import run_bench_prefilter
        path = run_bench_prefilter(str(tmp_path), num_series=24,
                                   length=256, repeats=2)
        assert path.endswith("BENCH_prefilter.json")
        with open(path) as handle:
            data = json.load(handle)
        assert data["benchmark"] == "prefilter"
        assert data["dataset"] == "many_series"
        assert data["num_series"] == 24
        assert len(data["off_wall_seconds"]) == 2
        assert len(data["on_wall_seconds"]) == 2
        assert data["speedup"] > 0
        assert data["total_matches"] > 0
        report = data["prefilter"]
        assert report["series_skipped"] > 0
        assert report["series_examined"] == 24

    def test_run_bench_parallel_many_series_template(self, tmp_path):
        import json

        from repro.bench.runner import run_bench_parallel
        path = run_bench_parallel(str(tmp_path),
                                  template_name="many_series",
                                  num_series=8, length=64, workers=2,
                                  repeats=1)
        assert path.endswith("BENCH_parallel_many_series.json")
        with open(path) as handle:
            data = json.load(handle)
        assert data["dataset"] == "many_series"
        assert data["speedup"] > 0

    def test_run_bench_parallel_emits_artifact(self, tmp_path):
        import json
        import os

        from repro.bench.runner import run_bench_parallel
        path = run_bench_parallel(str(tmp_path), num_series=8, length=60,
                                  workers=2, repeats=2)
        assert path.endswith("BENCH_parallel_v_shape.json")
        with open(path) as handle:
            data = json.load(handle)
        assert data["benchmark"] == "parallel"
        assert data["executor"] == "process"
        assert data["workers"] == 2
        assert data["num_series"] == 8
        assert data["cpu_count"] == os.cpu_count()
        assert len(data["serial_wall_seconds"]) == 2
        assert len(data["parallel_wall_seconds"]) == 2
        assert data["speedup"] > 0
        # A genuine speedup is only physically possible with spare
        # cores; single-core runners record the honest ratio instead.
        if (os.cpu_count() or 1) >= 4:
            assert data["speedup"] > 1.0


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]


class TestToolsCLI:
    def test_table2(self, capsys):
        import sys
        sys.path.insert(0, "tools")
        try:
            import run_experiments
        finally:
            sys.path.pop(0)
        run_experiments._tables.clear()
        run_experiments.main(["table2", "--scale", "ci"])
        out = capsys.readouterr().out
        assert "Table 2" in out and "sp500" in out

    def test_unknown_experiment(self):
        import sys
        sys.path.insert(0, "tools")
        try:
            import run_experiments
        finally:
            sys.path.pop(0)
        with pytest.raises(SystemExit):
            run_experiments.main(["frobnicate"])
