"""EXPLAIN ANALYZE metrics layer tests (docs/OBSERVABILITY.md)."""

import json

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.exec.base import ExecContext
from repro.exec.metrics import OpMetrics, RunMetrics, instrument_plan
from repro.exec.seggen import SegGenWindow
from repro.lang.query import compile_query
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace

from tests.conftest import make_series

QUERY = """
ORDER BY tstamp
PATTERN ((DN & W) (UP & W)) & WINDOW
DEFINE SEGMENT W AS window(2, null),
  SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.5,
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.5,
  SEGMENT WINDOW AS window(1, 20)
"""


def series_list(count=2, n=50):
    rng = np.random.default_rng(11)
    return [make_series(np.cumsum(rng.normal(0, 1, n)) + 50,
                        key=(f"s{i}",)) for i in range(count)]


def run(optimizer="cost", analyze=True, **kwargs):
    engine = TRexEngine(optimizer=optimizer, analyze=analyze, **kwargs)
    return engine.execute_query(compile_query(QUERY), series_list())


class TestInstrumentPlan:
    def test_original_plan_untouched(self):
        op = SegGenWindow(
            WindowConjunction([WindowSpec.point(1, 2)]), "W")
        clone = instrument_plan(op)
        assert clone is not op
        assert clone.op_id == op.op_id
        # The original still uses the class-level eval (no shadow).
        assert "eval" not in vars(op)
        assert "eval" in vars(clone)

    def test_uninstrumented_context_passthrough(self):
        """The instrumented plan works even without a metric sink."""
        series = make_series([1, 2, 3, 4])
        op = SegGenWindow(
            WindowConjunction([WindowSpec.point(1, 2)]), "W")
        clone = instrument_plan(op)
        ctx = ExecContext(series)
        got = sorted({seg.bounds
                      for seg in clone.eval(ctx, SearchSpace.full(4), {})})
        want = sorted({seg.bounds
                       for seg in op.eval(ctx, SearchSpace.full(4), {})})
        assert got == want

    def test_records_calls_segments_and_spaces(self):
        series = make_series([1, 2, 3, 4])
        op = SegGenWindow(
            WindowConjunction([WindowSpec.point(1, 2)]), "W")
        clone = instrument_plan(op)
        metrics = RunMetrics()
        ctx = ExecContext(series, metrics=metrics)
        segments = list(clone.eval(ctx, SearchSpace.full(4), {}))
        record = metrics.ops[op.op_id]
        assert record.eval_calls == 1
        assert record.segments_out == len(segments) == 5
        assert record.sum_ls == record.sum_le == 4  # full space, len 4
        assert record.max_ls == record.max_le == 4
        assert record.time_seconds > 0


class TestAnalyzeMode:
    def test_matches_unchanged_and_metrics_attached(self):
        plain = run(analyze=False)
        analyzed = run(analyze=True)
        assert plain.all_matches() == analyzed.all_matches()
        assert plain.op_metrics is None
        assert plain.plan_analyze == ""
        assert analyzed.op_metrics is not None
        assert analyzed.plan_analyze

    def test_per_series_metrics_sum_to_aggregate(self):
        result = run()
        per_series = [entry.metrics for entry in result.per_series]
        assert all(m is not None for m in per_series)
        for op_id, total in result.op_metrics.ops.items():
            assert total.eval_calls == sum(
                m.ops[op_id].eval_calls
                for m in per_series if op_id in m.ops)
            assert total.segments_out == sum(
                m.ops[op_id].segments_out
                for m in per_series if op_id in m.ops)

    def test_self_time_bounded_by_cumulative(self):
        result = run()
        for record in result.op_metrics.ops.values():
            assert 0.0 <= record.self_seconds <= record.time_seconds + 1e-9

    def test_segments_in_matches_children_out(self):
        tree = run().analyze_tree
        checked = 0
        for node in _walk(tree):
            children = node.get("children", [])
            if children and "metrics" in node:
                want = sum(c["metrics"]["segments_out"]
                           for c in children if "metrics" in c)
                assert node["metrics"]["segments_in"] == want
                checked += 1
        assert checked > 0

    def test_probe_counters_attributed(self):
        result = run(optimizer="pr_left")
        counters = sum((record.counters
                        for record in result.op_metrics.ops.values()),
                       start=__import__("collections").Counter())
        assert counters["probe_cache_misses"] == \
            result.stats["probe_calls"]
        assert counters["probe_cache_hits"] == \
            result.stats["probe_cache_hits"]
        assert counters["probe_cache_misses"] > 0

    def test_annotated_tree_lists_every_operator(self):
        result = run()
        for record in result.op_metrics.ops.values():
            assert record.label.split("(")[0] in result.plan_analyze

    def test_stats_property_backward_compatible(self):
        result = run()
        folded = __import__("collections").Counter()
        for entry in result.per_series:
            folded.update(entry.stats)
        assert result.stats == folded
        assert result.stats["condition_evals"] > 0


class TestMetricsJson:
    def test_metrics_dict_is_json_serializable(self):
        result = run()
        text = json.dumps(result.metrics_dict(), sort_keys=True)
        data = json.loads(text)
        assert data["total_matches"] == result.total_matches
        assert len(data["per_series"]) == 2
        assert "metrics" in data["plan"]
        assert data["operators"]

    def test_plan_tree_mirrors_operators_section(self):
        data = run().metrics_dict()
        tree_ids = {node["op_id"] for node in _walk(data["plan"])}
        flat_ids = {entry["op_id"] for entry in data["operators"]}
        assert flat_ids <= tree_ids

    def test_disabled_mode_has_no_plan_section(self):
        data = run(analyze=False).metrics_dict()
        assert "plan" not in data
        assert "operators" not in data
        assert data["per_series"][0]["stats"]  # per-series stats remain


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


class TestOpMetricsUnit:
    def test_merge_accumulates(self):
        a = OpMetrics(op_id=1, label="X")
        b = OpMetrics(op_id=1, label="X")
        a.eval_calls, b.eval_calls = 2, 3
        a.segments_out, b.segments_out = 10, 20
        a.max_ls, b.max_ls = 5, 9
        a.counters["hits"] = 1
        b.counters["hits"] = 4
        a.merge(b)
        assert a.eval_calls == 5
        assert a.segments_out == 30
        assert a.max_ls == 9
        assert a.counters["hits"] == 5

    def test_observe_space(self):
        record = OpMetrics(op_id=1, label="X")
        record.eval_calls = 1
        record.observe_space(SearchSpace(0, 9, 0, 4))
        assert record.sum_ls == 10 and record.sum_le == 5
        assert record.avg_ls == pytest.approx(10.0)

    def test_annotation_mentions_key_metrics(self):
        record = OpMetrics(op_id=1, label="X")
        record.eval_calls = 1
        record.observe_space(SearchSpace(0, 9, 0, 4))
        text = record.annotation()
        for token in ("time=", "self=", "evals=", "out=", "ls_avg="):
            assert token in text
