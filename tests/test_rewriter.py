"""Appendix B rewriter tests: each rule plus the Example 3 walkthrough."""

import copy

import numpy as np

from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine
from repro.lang import pattern as P
from repro.lang.query import compile_query
from repro.lang.rewriter import (rewrite_query, rule1_point_to_segment,
                                 rule2_subset_to_segment,
                                 rule3_reassign_conditions, rule4_decompose,
                                 rule5_remove_irrelevant,
                                 rule_window_recognition)

from tests.conftest import make_series

FIGURE2 = """
ORDER BY tstamp
PATTERN (A* D+ B* Z)
SUBSET U = (A, D, B)
DEFINE D AS tstamp - first(D.tstamp) <= 5,
  Z AS last(U.tstamp) - first(U.tstamp) BETWEEN 25 AND 30
    AND mann_kendall_test(U.temp) >= 2.0
    AND linear_regression_r2(D.tstamp, D.temp) >= 0.9
    AND last(D.temp) - first(D.temp) < -12
"""


def figure2_query():
    return compile_query(FIGURE2)


class TestRule1:
    def test_trivial_star_becomes_segment(self):
        query = compile_query("ORDER BY t\nPATTERN (x* B)\nDEFINE B AS v > 1")
        assert rule1_point_to_segment(query)
        assert query.var("x").is_segment
        assert not any(isinstance(n, P.Kleene)
                       for n in P.walk(query.pattern))

    def test_time_delta_plus_becomes_windowed_segment(self):
        query = compile_query(
            "ORDER BY t\nPATTERN (x+ B)\n"
            "DEFINE x AS t - first(x.t) <= 5, B AS v > 1")
        assert rule1_point_to_segment(query)
        var = query.var("x")
        assert var.is_segment
        assert var.windows and var.windows[0].hi == 5.0

    def test_conditioned_star_not_rewritten(self):
        query = compile_query("ORDER BY t\nPATTERN (x* B)\n"
                              "DEFINE x AS v > 0, B AS v > 1")
        assert not rule1_point_to_segment(query)


class TestRule2:
    def test_subset_becomes_and(self):
        query = figure2_query()
        assert rule2_subset_to_segment(query)
        assert not query.subsets
        # References to U are renamed to the fresh segment variable.
        z_refs = query.var("Z").external_refs
        assert "U" not in z_refs
        assert any(name.startswith("UU") for name in z_refs)

    def test_no_subset_noop(self):
        query = compile_query("ORDER BY t\nPATTERN (A)\nDEFINE A AS v > 1")
        assert not rule2_subset_to_segment(query)


class TestRule3:
    def test_clauses_move_to_owner(self):
        query = figure2_query()
        rule2_subset_to_segment(query)
        rule1_point_to_segment(query)
        assert rule3_reassign_conditions(query)
        assert query.var("D").condition is not None
        # Z keeps nothing but (possibly) conditions on itself.
        z = query.var("Z")
        assert not z.external_refs


class TestWindowRecognition:
    def test_between_duration_becomes_window(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\n"
            "DEFINE SEGMENT S AS last(S.tstamp) - first(S.tstamp) "
            "BETWEEN 3 AND 8 AND last(S.v) > 0")
        assert rule_window_recognition(query)
        var = query.var("S")
        assert var.windows and (var.windows[0].lo,
                                var.windows[0].hi) == (3.0, 8.0)
        assert var.condition is not None  # the value clause remains

    def test_non_order_column_untouched(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\n"
            "DEFINE SEGMENT S AS last(S.v) - first(S.v) BETWEEN 3 AND 8")
        assert not rule_window_recognition(query)


class TestRule4:
    def test_conjunction_decomposed(self):
        query = compile_query(
            "ORDER BY t\nPATTERN (S)\n"
            "DEFINE SEGMENT S AS last(S.v) > 1 AND first(S.v) < 9")
        assert rule4_decompose(query)
        assert "S" not in query.variables
        assert isinstance(query.pattern, P.And)
        assert len(query.pattern.parts) == 2

    def test_single_clause_untouched(self):
        query = compile_query("ORDER BY t\nPATTERN (S)\n"
                              "DEFINE SEGMENT S AS last(S.v) > 1")
        assert not rule4_decompose(query)


class TestRule5:
    def test_wild_and_member_removed(self):
        query = compile_query(
            "ORDER BY t\nPATTERN (A & Z)\n"
            "DEFINE SEGMENT A AS last(A.v) > 1, SEGMENT Z AS true")
        assert rule5_remove_irrelevant(query)
        assert "Z" not in query.variables

    def test_trailing_point_removed(self):
        query = compile_query("ORDER BY t\nPATTERN (A Z)\n"
                              "DEFINE SEGMENT A AS last(A.v) > 1")
        assert rule5_remove_irrelevant(query)
        assert query.pattern == P.VarRef("A")

    def test_trailing_wild_segment_kept(self):
        query = compile_query(
            "ORDER BY t\nPATTERN (A Z)\n"
            "DEFINE SEGMENT A AS last(A.v) > 1, SEGMENT Z AS true")
        assert not rule5_remove_irrelevant(query)

    def test_referenced_wild_kept(self):
        query = compile_query(
            "ORDER BY t\nPATTERN (A & Z)\n"
            "DEFINE SEGMENT A AS corr(A.v, Z.v) > 0.5, SEGMENT Z AS true")
        assert not rule5_remove_irrelevant(query)


class TestEndToEnd:
    def test_figure2_reaches_figure18_shape(self):
        query = rewrite_query(figure2_query())
        text = query.pattern.describe()
        # Expect ((A (D1 & D2) B) & UU) — padded decomposed drop plus an
        # overall windowed trend variable.
        assert isinstance(query.pattern, P.And)
        assert "D1" in text and "D2" in text
        uu = next(name for name in query.variables if name.startswith("UU"))
        var = query.var(uu)
        assert var.windows  # BETWEEN became window(25, 30)
        assert (var.windows[0].lo, var.windows[0].hi) == (25.0, 30.0)

    def test_rewritten_query_equivalent_on_data(self):
        rng = np.random.default_rng(2)
        n = 45
        temps = 3 + 0.5 * np.arange(n) + rng.normal(0, 0.8, n)
        temps[30:34] -= np.asarray([4.0, 9.0, 13.0, 16.0])
        series = make_series(temps, extra={"temp": temps})
        rewritten = rewrite_query(figure2_query())
        expected = sorted(BruteForceMatcher(rewritten).match_series(series))
        engine = TRexEngine(optimizer="cost")
        got = engine.execute_query(rewritten,
                                   [series]).per_series[0].matches
        assert got == expected

    def test_fixpoint_terminates(self):
        query = figure2_query()
        rewritten = rewrite_query(query, max_rounds=3)
        again = rewrite_query(copy.deepcopy(rewritten), max_rounds=3)
        assert rewritten.pattern.describe() == again.pattern.describe()
