"""Query template tests: compilation, grids, executability, results."""

import pytest

from repro.core.engine import TRexEngine
from repro.datasets import load
from repro.errors import DataError
from repro.queries import (ALL_TEMPLATES, TEMPLATES, get_template,
                           iter_instances)

SMALL = {
    "sp500": dict(num_series=6, length=100),
    "covid19": dict(num_series=6, length=64),
    "weather": dict(num_series=2, length=260),
    "taxi": dict(num_series=1, length=480),
    "nasdaq": dict(num_series=1, length=1500),
}

_tables = {}


def table_for(template):
    if template.dataset not in _tables:
        _tables[template.dataset] = load(template.dataset,
                                         **SMALL[template.dataset])
    return _tables[template.dataset]


class TestCatalog:
    def test_eleven_templates(self):
        assert len(TEMPLATES) == 11
        assert {t.name for t in TEMPLATES} == {
            "v_shape", "head_shldr", "outlier", "rebound", "cld_wave",
            "rptd_pttrn", "limit_sell", "OpenCEP_Q1", "OpenCEP_Q2",
            "AFA_Q1", "AFA_Q2"}

    def test_get_template(self):
        assert get_template("cld_wave").dataset == "weather"
        with pytest.raises(DataError):
            get_template("bogus")

    def test_parameter_grid_sizes(self):
        # Paper: at least 9 parameter sets except the OpenCEP queries (5).
        for template in TEMPLATES:
            expected = 5 if template.name.startswith("OpenCEP") else 9
            assert len(template.param_sets()) >= expected, template.name

    def test_limit_sell_flagged_not(self):
        assert get_template("limit_sell").has_not
        assert not get_template("v_shape").has_not

    def test_nested_kleene_flags(self):
        assert get_template("AFA_Q1").has_nested_kleene
        assert get_template("AFA_Q2").has_nested_kleene

    @pytest.mark.parametrize("template", ALL_TEMPLATES,
                             ids=lambda t: t.name)
    def test_all_instances_compile(self, template):
        count = 0
        for params, query in iter_instances(template):
            assert query.pattern is not None
            count += 1
        assert count == len(template.param_sets())


@pytest.mark.parametrize("template", ALL_TEMPLATES, ids=lambda t: t.name)
def test_first_instance_executes(template):
    params = template.param_sets()[0]
    query = template.compile(params)
    table = table_for(template)
    engine = TRexEngine(optimizer="cost", sharing="auto")
    result = engine.execute_query(
        query, table.partition(query.partition_by, query.order_by))
    assert result.total_matches >= 0
    assert result.plan_explain


@pytest.mark.parametrize("name", ["v_shape", "cld_wave", "rebound",
                                  "rptd_pttrn", "OpenCEP_Q2", "AFA_Q2"])
def test_templates_find_matches_on_synthetic_data(name):
    """The synthetic datasets must actually contain the target patterns."""
    template = get_template(name)
    table = table_for(template)
    total = 0
    # Spread probes across the grid: the strictest corner of a sweep may
    # legitimately be empty (as in the paper's selectivity sweeps).
    for params in template.param_sets()[::3][:3]:
        query = template.compile(params)
        engine = TRexEngine(optimizer="cost", sharing="auto")
        result = engine.execute_query(
            query, table.partition(query.partition_by, query.order_by))
        total += result.total_matches
    assert total > 0, f"{name} found nothing on its synthetic dataset"
