"""Dataset generator tests: determinism, shapes, pattern availability."""

import numpy as np
import pytest

from repro.datasets import (DATASET_SHAPES, covid19, dataset_statistics,
                            load, nasdaq, sp500, taxi, weather)
from repro.errors import DataError


class TestShapes:
    @pytest.mark.parametrize("name", sorted(DATASET_SHAPES))
    def test_default_shape(self, name):
        table = load(name, scale="default")
        expected_series, expected_length = DATASET_SHAPES[name][0]
        partition = {"sp500": "ticker", "covid19": "county",
                     "weather": "city", "taxi": None, "nasdaq": None}[name]
        series_list = table.partition([partition] if partition else None,
                                      "tstamp")
        assert len(series_list) == expected_series
        assert len(series_list[0]) == expected_length

    def test_custom_sizes(self):
        table = sp500(num_series=3, length=50)
        series_list = table.partition(["ticker"], "tstamp")
        assert len(series_list) == 3
        assert all(len(s) == 50 for s in series_list)

    def test_unknown_dataset(self):
        with pytest.raises(DataError):
            load("nope")


class TestDeterminism:
    @pytest.mark.parametrize("generator", [sp500, covid19, weather, taxi,
                                           nasdaq])
    def test_same_seed_same_data(self, generator):
        a = generator(num_series=2, length=40)
        b = generator(num_series=2, length=40)
        for column in a.column_names:
            col_a, col_b = a.column(column), b.column(column)
            if col_a.dtype == object:
                assert list(col_a) == list(col_b)
            else:
                assert np.array_equal(col_a, col_b)

    def test_different_seed_different_data(self):
        a = sp500(num_series=1, length=30, seed=1)
        b = sp500(num_series=1, length=30, seed=2)
        assert not np.array_equal(a.column("price"), b.column("price"))


class TestContent:
    def test_sp500_positive_prices(self):
        table = sp500(num_series=5, length=60)
        assert np.all(table.column("price") > 0)

    def test_covid_floored_at_one(self):
        table = covid19(num_series=5, length=64)
        assert np.all(table.column("confirmed") >= 1.0)

    def test_weather_has_cold_waves(self):
        # The injection must create at least one >=20-degree drop within
        # 5 days somewhere.
        table = weather(num_series=2, length=400)
        series_list = table.partition(["city"], "tstamp")
        found = False
        for series in series_list:
            temps = series.column("temp")
            for start in range(len(temps) - 5):
                if temps[start] - temps[start + 4] >= 20:
                    found = True
        assert found

    def test_taxi_daily_seasonality(self):
        table = taxi(length=480)  # ten days
        rides = table.column("rides")
        daily_peak = max(rides[:48])
        night = rides[4:8].mean()
        assert daily_peak > 2 * night

    def test_nasdaq_tickers_and_peaks(self):
        table = nasdaq(length=500)
        tickers = set(table.column("ticker"))
        assert "GOOG" in tickers
        assert np.all(table.column("peak") > 0)
        timestamps = table.column("tstamp")
        assert np.all(np.diff(timestamps) > 0)

    def test_statistics_table(self):
        stats = dataset_statistics(scale="default")
        assert set(stats) == set(DATASET_SHAPES)
        assert stats["sp500"]["num_series"] == 503
