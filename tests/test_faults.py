"""Unit tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.errors import DataError, PlanError, QueryTimeout
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    """Every test starts and ends with nothing armed."""
    faults.disarm_all()
    yield
    faults.disarm_all()


class TestArming:
    def test_disarmed_by_default(self):
        assert faults.ENABLED is False
        assert faults.active() == []

    def test_fire_without_fault_passes_value_through(self):
        assert faults.fire("planner.dp", 42) == 42

    def test_inject_arms_and_disarms(self):
        with faults.inject("planner.dp") as spec:
            assert faults.ENABLED is True
            assert faults.active() == [spec]
        assert faults.ENABLED is False
        assert faults.active() == []

    def test_inject_disarms_on_exception(self):
        with pytest.raises(faults.InjectedFault):
            with faults.inject("planner.dp"):
                faults.fire("planner.dp")
        assert faults.ENABLED is False

    def test_arm_replaces_same_point(self):
        faults.arm(faults.FaultSpec("p", on_hit=1))
        faults.arm(faults.FaultSpec("p", on_hit=9))
        assert len(faults.active()) == 1
        assert faults.active()[0].on_hit == 9

    def test_disarm_unknown_point_is_noop(self):
        faults.disarm("never.armed")
        assert faults.ENABLED is False


class TestFiring:
    def test_raise_on_first_hit(self):
        with faults.inject("p"):
            with pytest.raises(faults.InjectedFault, match="'p'"):
                faults.fire("p")

    def test_nth_hit(self):
        with faults.inject("p", on_hit=3) as spec:
            faults.fire("p")
            faults.fire("p")
            with pytest.raises(faults.InjectedFault, match="hit 3"):
                faults.fire("p")
            assert spec.hits == 3 and spec.fired == 1

    def test_times_limits_firings(self):
        with faults.inject("p", action="corrupt", times=2,
                           corrupt=lambda v: -v) as spec:
            assert [faults.fire("p", 1) for _ in range(4)] == [-1, -1, 1, 1]
            assert spec.fired == 2

    def test_unarmed_points_unaffected(self):
        with faults.inject("p"):
            assert faults.fire("q", "ok") == "ok"

    def test_action_exception_classes(self):
        cases = [("raise", faults.InjectedFault), ("timeout", QueryTimeout),
                 ("data", DataError), ("plan", PlanError),
                 ("crash", RuntimeError)]
        for action, exc_type in cases:
            with faults.inject("p", action=action):
                with pytest.raises(exc_type):
                    faults.fire("p")

    def test_delay_sleeps_then_passes_through(self):
        with faults.inject("p", action="delay", delay_seconds=0.02):
            t0 = time.perf_counter()
            assert faults.fire("p", "v") == "v"
            assert time.perf_counter() - t0 >= 0.02

    def test_corrupt_default_is_nan(self):
        import math
        with faults.inject("p", action="corrupt"):
            assert math.isnan(faults.fire("p", 7.0))

    def test_corrupt_callable(self):
        with faults.inject("p", action="corrupt", corrupt=lambda v: v * 10):
            assert faults.fire("p", 3) == 30


class TestSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.FaultSpec("p", action="explode")

    def test_on_hit_must_be_positive(self):
        with pytest.raises(ValueError, match="1-based"):
            faults.FaultSpec("p", on_hit=0)


class TestParseSpec:
    def test_point_only_defaults(self):
        spec = faults.parse_spec("planner.dp")
        assert (spec.point, spec.action, spec.on_hit) == \
            ("planner.dp", "raise", 1)

    def test_action_and_hit(self):
        spec = faults.parse_spec("data.series:timeout@2")
        assert (spec.point, spec.action, spec.on_hit) == \
            ("data.series", "timeout", 2)

    def test_delay_with_seconds(self):
        spec = faults.parse_spec("exec.ProbeNot.eval:delay(0.25)")
        assert spec.action == "delay"
        assert spec.delay_seconds == 0.25

    def test_delay_without_seconds(self):
        assert faults.parse_spec("p:delay").delay_seconds == 0.0

    def test_whitespace_tolerated(self):
        assert faults.parse_spec("  planner.dp ").point == "planner.dp"

    def test_bad_hit_rejected(self):
        with pytest.raises(ValueError, match="@hit"):
            faults.parse_spec("p:raise@soon")

    def test_bad_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            faults.parse_spec("p:delay[3]")

    def test_empty_entry_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_spec("   ")


class TestInstallFromEnv:
    def test_installs_multiple_entries(self):
        specs = faults.install_from_env(
            "planner.dp:plan, data.series:timeout@2; aggregate.lookup")
        assert len(specs) == 3
        assert faults.ENABLED is True
        points = {spec.point for spec in faults.active()}
        assert points == {"planner.dp", "data.series", "aggregate.lookup"}

    def test_empty_value_installs_nothing(self):
        assert faults.install_from_env("") == []
        assert faults.ENABLED is False

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv("TREX_FAULTS", "planner.dp:crash")
        specs = faults.install_from_env()
        assert len(specs) == 1 and specs[0].action == "crash"
