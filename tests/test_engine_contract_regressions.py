"""Regression tests for the violations the engine contract analyzer found.

Each test pins one fix shipped alongside ``repro lint --engine`` and is
*discriminating*: it fails if that specific ``tick()``/``charge()`` call
is removed again.  Tick tests use the :mod:`tests.test_timeout_ticks`
recipe (expired deadline + ``TICK_STRIDE`` sized so the deciding tick is
the one under test).  Loops whose tick cannot be isolated behaviourally
(the Kleene chain-extension loop, the AFA candidate loop's exact line)
are guarded by the analyzer itself — see ``test_engine_lint``'s repo
self-check.
"""

import time

import pytest

from repro.baselines.afa import AFAExecutor
from repro.errors import QueryTimeout, ResourceBudgetExceeded
from repro.exec.and_or import SortMergeAnd
from repro.exec.base import ExecContext
from repro.exec.concat import SortMergeConcat, WildWindowConcat
from repro.exec.kleene import MaterializeKleene
from repro.exec.seggen import SegGenFilter
from repro.lang.query import VarDef, compile_query
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.logical import LAnd, walk
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment

from tests.conftest import make_series
from tests.test_timeout_ticks import _StaticOp, expired_ctx

WILD = WindowConjunction.wild()


def window(lo, hi):
    return WindowConjunction([WindowSpec.point(lo, hi)])


def test_seggen_diagonal_ticks_on_rejected_points():
    """``_iter_diagonal`` must tick per candidate, not per acceptance.

    A point variable under a window that rejects every zero-duration
    segment yields nothing, so without the in-loop tick the scan would
    spin through the whole diagonal with the deadline unchecked.
    """
    series = make_series([1.0, 2.0, 3.0, 4.0])
    var = VarDef(name="P", is_segment=False)
    op = SegGenFilter(var, window(1, 2))  # duration >= 1 rejects points
    with pytest.raises(QueryTimeout):
        list(op.eval(expired_ctx(series), SearchSpace.full(len(series)), {}))


@pytest.mark.parametrize("family", [SortMergeConcat, SortMergeAnd],
                         ids=["concat", "and"])
def test_binary_join_ticks_per_candidate_pair(family):
    """``_join`` itself must tick: the probe variants call it once per
    cached candidate without any other tick progress in between."""
    series = make_series([1.0, 2.0, 3.0, 4.0])
    if family is SortMergeConcat:
        op = family(_StaticOp(), _StaticOp(), 0, WILD)
    else:
        op = family(_StaticOp(), _StaticOp(), WILD)
    ctx = expired_ctx(series)
    with pytest.raises(QueryTimeout):
        list(op._join(ctx, SearchSpace.full(len(series)),
                      Segment(0, 1), Segment(1, 2)))


def test_kleene_seed_loop_ticks_when_window_prunes_everything():
    """The seed loop over ``by_start[start]`` must tick even when the
    window cap rejects every seed (the BFS queue then stays empty, so
    no other loop runs).

    The child emits three chainable segments, costing three ticks in
    the materialization loop; with ``TICK_STRIDE = 4`` the deciding
    fourth tick can only come from the seed loop.
    """
    series = make_series([1.0, 2.0, 3.0, 4.0, 5.0])
    child = _StaticOp(((0, 2), (0, 3), (0, 4)))  # all out-span window(0, 1)
    op = MaterializeKleene(child, 1, None, 0, window(0, 1))
    ctx = ExecContext(series, deadline=time.perf_counter() - 1.0)
    ctx.TICK_STRIDE = 4
    with pytest.raises(QueryTimeout):
        list(op.eval(ctx, SearchSpace.full(len(series)), {}))


def test_wild_window_concat_charges_materialized_children():
    """WConcat buffers both children in full; those lists must be
    charged against ``max_segments`` like every other materialization."""
    series = make_series([1.0, 2.0, 3.0, 4.0])
    op = WildWindowConcat(_StaticOp(), _StaticOp(), WILD, WILD)
    ctx = ExecContext(series, segment_budget=2)
    with pytest.raises(ResourceBudgetExceeded):
        list(op.eval(ctx, SearchSpace.full(len(series)), {}))


def test_afa_candidate_emission_ticks():
    """``_enumerate_and``'s final candidate loop must tick.

    ``_ends`` is stubbed to canned results so no other AFA code path
    ticks; the raise can only come from the emission loop itself.
    """
    query = compile_query("""
    ORDER BY tstamp
    PATTERN A & B
    DEFINE SEGMENT A AS first(A.val) > 0,
      SEGMENT B AS last(B.val) > 0
    """)
    executor = AFAExecutor(query, sharing=False, hand_tuned=False)
    series = make_series([1.0, 2.0, 3.0, 4.0])
    executor.match_series_prepare(series)
    executor._ctx.deadline = time.perf_counter() - 1.0
    executor._ctx.TICK_STRIDE = 1
    land = next(node for node in walk(executor.plan)
                if isinstance(node, LAnd))
    executor._ends = lambda node, start, refs: ((2, {}),)
    with pytest.raises(QueryTimeout):
        list(executor._enumerate_and(land, 0, {}))
