"""Vector kernel parity tests (docs/VECTORIZATION.md).

The contract under test: for every eligible leaf, the numpy batch path
behind :func:`repro.exec.vector.try_eval` is **byte-identical** to the
scalar loop — segments, payloads, ``ctx.stats``, per-op EXPLAIN ANALYZE
counters, abandonment behavior, and deadline errors.  Ineligible
conditions must fall back to the scalar loop transparently.
"""

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.errors import PlanError, QueryTimeout
from repro.exec import vector
from repro.exec.base import ExecContext
from repro.exec.metrics import RunMetrics, instrument_plan
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef, compile_query
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace

from tests.conftest import make_series


def seg_leaf(cls, cond_text, lo=2, hi=8, name="S"):
    condition = parse_condition(cond_text)
    var = VarDef(name, True, (WindowSpec.point(lo, hi),), condition,
                 frozenset())
    return cls(var, var.window_conjunction)


def point_leaf(cond_text, windows=(), name="P"):
    condition = parse_condition(cond_text)
    var = VarDef(name, False, tuple(windows), condition, frozenset())
    return SegGenFilter(var, var.window_conjunction)


def run_toggled(op, series, vectorize, sp=None, refs=None, publish=False):
    ctx = ExecContext(series, vectorize=vectorize)
    if sp is None:
        sp = SearchSpace.full(len(series))
    segments = [(seg.bounds, seg.payload)
                for seg in op.eval(ctx, sp, refs or {})]
    return segments, dict(ctx.stats)


def assert_parity(op, series, sp=None):
    scalar_out, scalar_stats = run_toggled(op, series, False, sp)
    vector_out, vector_stats = run_toggled(op, series, True, sp)
    assert vector_out == scalar_out
    assert vector_stats == scalar_stats
    return scalar_out


@pytest.fixture
def wave():
    rng = np.random.default_rng(7)
    t = np.arange(64, dtype=np.float64)
    vals = np.sin(t * 0.3) * 2.0 + rng.normal(0, 0.5, 64)
    return make_series(vals)


@pytest.fixture
def nan_wave(wave):
    vals = wave.column("val").copy()
    vals[::5] = np.nan
    return make_series(vals)


SEGMENT_CONDITIONS = [
    "max(S.val) - min(S.val) >= 1.0",
    "min(S.val) > -1.5",
    "count(S.val) >= 3.0",
    "max(S.val) > 0.5 and min(S.val) > -2.5",
    "max(S.val) > 1.8 or min(S.val) < -1.8",
    "max(S.val) * 0.5 + 1.0 >= -min(S.val)",
    "max(S.val) / min(S.val) <= 0.0",
    "-min(S.val) != max(S.val)",
]


class TestSegmentLeafParity:
    @pytest.mark.parametrize("cond", SEGMENT_CONDITIONS)
    def test_direct_parity(self, wave, cond):
        assert_parity(seg_leaf(SegGenFilter, cond), wave)

    @pytest.mark.parametrize("cond", SEGMENT_CONDITIONS)
    def test_direct_parity_with_nans(self, nan_wave, cond):
        assert_parity(seg_leaf(SegGenFilter, cond), nan_wave)

    @pytest.mark.parametrize("cond", [
        "avg(S.val) > 0.2",
        "sum(S.val) <= 4.0",
        "stddev(S.val) < 1.2",
        "avg(S.val) > 0.0 and stddev(S.val) < 2.0",
    ])
    def test_indexed_parity(self, wave, nan_wave, cond):
        for series in (wave, nan_wave):
            out = assert_parity(seg_leaf(SegGenIndexing, cond), series)
            del out

    def test_division_by_zero_parity(self):
        # _vdiv must reproduce scalar inf/nan semantics bit-for-bit.
        series = make_series([0.0, 1.0, 0.0, -1.0, 0.0, 2.0])
        assert_parity(
            seg_leaf(SegGenFilter, "max(S.val) / min(S.val) >= 0.0",
                     lo=1, hi=3), series)

    def test_search_space_clamping(self, wave):
        for sp in (SearchSpace.exact(3, 11), SearchSpace(0, 5, 20, 40),
                   SearchSpace(10, 10, 12, 12)):
            assert_parity(seg_leaf(SegGenFilter,
                                   "max(S.val) - min(S.val) >= 1.0"), wave,
                          sp)

    def test_publish_payload_parity(self, wave):
        condition = parse_condition("max(S.val) > 0.5")
        var = VarDef("S", True, (WindowSpec.point(2, 8),), condition,
                     frozenset())
        op = SegGenFilter(var, var.window_conjunction,
                          publish=frozenset({"S"}))
        got = assert_parity(op, wave)
        assert got and all(payload == {"S": bounds}
                           for bounds, payload in got)


class TestPointLeafParity:
    def test_bare_column_condition(self):
        series = make_series([1.0, 5.0, 2.0, 7.0, np.nan, 9.0])
        assert_parity(point_leaf("val > 3"), series)

    def test_time_window_diagonal(self):
        series = make_series(np.linspace(-2, 2, 30))
        op = point_leaf("val >= 0", windows=(WindowSpec.point(1, 4),))
        assert_parity(op, series)


class TestDegenerateSeries:
    @pytest.mark.parametrize("values", [[0.5], [0.5, -0.5], [np.nan],
                                        [np.nan, np.nan, np.nan]])
    def test_tiny_series(self, values):
        series = make_series(values)
        for cls in (SegGenFilter, SegGenIndexing):
            cond = ("max(S.val) > 0.0" if cls is SegGenFilter
                    else "avg(S.val) > 0.0")
            assert_parity(seg_leaf(cls, cond, lo=1, hi=3), series)


class TestFallback:
    def test_unsupported_condition_falls_back(self, wave):
        # linear_reg_r2_signed has no batch kernel: try_eval must decline
        # and the scalar loop must produce the usual answer either way.
        op = seg_leaf(SegGenFilter,
                      "linear_reg_r2_signed(S.tstamp, S.val) >= 0.2")
        ctx = ExecContext(wave, vectorize=True)
        assert vector.try_eval(op, ctx, SearchSpace.full(len(wave)), {},
                               None, "direct") is None
        assert_parity(op, wave)

    def test_non_float_column_falls_back(self, wave):
        # Series stores non-numeric columns as object arrays; bind()
        # must decline so the scalar path raises (or not) as usual.
        series = make_series(
            wave.column("val"),
            extra={"label": np.array(["x"] * len(wave), dtype=object)})
        op = seg_leaf(SegGenFilter, "max(S.label) > 3.0")
        ctx = ExecContext(series, vectorize=True)
        assert vector.try_eval(op, ctx, SearchSpace.full(len(series)), {},
                               None, "direct") is None

    def test_compiles_statically_allowlists(self):
        registry = ExecContext(make_series([1.0])).registry
        avg = seg_leaf(SegGenFilter, "avg(S.val) > 0.0").var
        # avg is exact through prefix sums but not through a direct
        # batched fold (np.sum pairwise accumulation).
        assert vector.compiles_statically(avg, "indexed", registry)
        assert not vector.compiles_statically(avg, "direct", registry)
        unsupported = seg_leaf(
            SegGenFilter, "linear_reg_r2_signed(S.tstamp, S.val) > 0").var
        assert not vector.compiles_statically(unsupported, "indexed",
                                              registry)
        assert not vector.compiles_statically(unsupported, "direct",
                                              registry)


class TestSuspensionExactCounters:
    """Counters must be exact at *every* generator suspension point —
    consumers like ProbeNot pull one segment and abandon the iterator."""

    @pytest.mark.parametrize("pulls", [0, 1, 3, 17])
    def test_abandonment_parity(self, wave, pulls):
        op = seg_leaf(SegGenFilter, "max(S.val) - min(S.val) >= 1.0")

        def pull(vectorize):
            ctx = ExecContext(wave, vectorize=vectorize)
            it = op.eval(ctx, SearchSpace.full(len(wave)), {})
            got = [next(it).bounds for _ in range(pulls)]
            it.close()
            return got, dict(ctx.stats)

        assert pull(True) == pull(False)

    @pytest.mark.parametrize("pulls", [1, 5])
    def test_indexed_abandonment_parity(self, wave, pulls):
        op = seg_leaf(SegGenIndexing, "avg(S.val) > 0.2")

        def pull(vectorize):
            ctx = ExecContext(wave, vectorize=vectorize)
            it = op.eval(ctx, SearchSpace.full(len(wave)), {})
            got = [next(it).bounds for _ in range(pulls)]
            it.close()
            return got, dict(ctx.stats)

        assert pull(True) == pull(False)


class TestPerOpMetrics:
    """Regression for the metrics asymmetry: all three leaf classes must
    attribute per-op counters through ``metrics.for_op`` identically on
    both paths (docs/OBSERVABILITY.md)."""

    def leaf_record(self, op, series, vectorize):
        clone = instrument_plan(op)
        metrics = RunMetrics()
        ctx = ExecContext(series, metrics=metrics, vectorize=vectorize)
        out = [s.bounds for s in clone.eval(
            ctx, SearchSpace.full(len(series)), {})]
        record = metrics.ops[op.op_id]
        return out, dict(record.counters)

    def test_window_leaf_counters(self, wave):
        op = SegGenWindow(WindowConjunction([WindowSpec.point(1, 2)]), "W")
        out, counters = self.leaf_record(op, wave, False)
        assert counters["segments_emitted"] == len(out) > 0

    @pytest.mark.parametrize("cls,cond", [
        (SegGenFilter, "max(S.val) - min(S.val) >= 1.0"),
        (SegGenIndexing, "avg(S.val) > 0.2"),
    ], ids=["filter", "indexing"])
    def test_cond_leaf_counters_identical(self, wave, cls, cond):
        op = seg_leaf(cls, cond)
        s_out, s_counters = self.leaf_record(op, wave, False)
        v_out, v_counters = self.leaf_record(op, wave, True)
        assert v_out == s_out
        assert v_counters == s_counters
        assert s_counters["condition_evals"] > 0
        assert s_counters["segments_emitted"] == len(s_out) > 0


class TestBudgetContract:
    def test_expired_deadline_raises_on_both_paths(self, wave):
        op = seg_leaf(SegGenFilter, "max(S.val) - min(S.val) >= 1.0")
        for vectorize in (False, True):
            ctx = ExecContext(wave, deadline=-1.0, vectorize=vectorize)
            ctx._ticks = ctx.TICK_STRIDE - 1  # next tick checks the clock
            with pytest.raises(QueryTimeout):
                list(op.eval(ctx, SearchSpace.full(len(wave)), {}))

    def test_tick_batch_charges_candidate_count(self, wave):
        op = seg_leaf(SegGenFilter, "max(S.val) - min(S.val) >= 1.0")
        scalar = ExecContext(wave, deadline=1e18, vectorize=False)
        batched = ExecContext(wave, deadline=1e18, vectorize=True)
        sp = SearchSpace.full(len(wave))
        list(op.eval(scalar, sp, {}))
        list(op.eval(batched, sp, {}))
        # Same amortized budget accounting: every candidate is ticked.
        assert batched._ticks == scalar._ticks


class TestToggles:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("TREX_VECTOR", "off")
        assert not vector.default_enabled()
        assert ExecContext(make_series([1.0])).vectorize is False
        monkeypatch.setenv("TREX_VECTOR", "1")
        assert vector.default_enabled()
        assert ExecContext(make_series([1.0])).vectorize is True

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("TREX_VECTOR", "off")
        assert ExecContext(make_series([1.0]),
                           vectorize=True).vectorize is True

    def test_engine_rejects_non_bool(self):
        with pytest.raises(PlanError, match="vectorize"):
            TRexEngine(vectorize="yes")

    def test_engine_toggle_end_to_end(self):
        query = compile_query("""
ORDER BY tstamp
PATTERN (DN UP)
DEFINE SEGMENT DN AS avg(DN.val) < 0.0 AND window(2, 12),
  SEGMENT UP AS avg(UP.val) > 0.0 AND window(2, 12)
""")
        rng = np.random.default_rng(3)
        series = [make_series(np.sin(np.arange(48) * 0.4)
                              + rng.normal(0, 0.2, 48),
                              key=(f"s{i}",)) for i in range(2)]
        results = {}
        for toggle in (False, True):
            engine = TRexEngine(analyze=True, vectorize=toggle)
            result = engine.execute_query(query, series)
            results[toggle] = [
                (sm.key, tuple(sm.matches),
                 sorted(sm.stats.items())) for sm in result.per_series]
        assert results[True] == results[False]
        assert any(matches for _, matches, _ in results[True])
