"""Symbolic summary index tests (src/repro/index, docs/PREFILTER.md)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.index.summary import (DEFAULT_BLOCK_SIZE, SYMBOLS,
                                 SeriesSummary, _block_extremes,
                                 build_summary, cache_counters,
                                 clear_cache, summary_for)
from repro.timeseries.series import Series

from tests.conftest import make_series


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestBuildSummary:
    def test_block_bounds_bracket_exact_extremes(self, rng):
        values = rng.normal(0, 10.0, 500)
        series = make_series(values)
        summary = build_summary(series, block_size=16)
        col = summary.column("val")
        exact_lo, exact_hi, empty = _block_extremes(values, 16)
        assert not empty.any()
        assert np.all(col.block_lo <= exact_lo)
        assert np.all(col.block_hi >= exact_hi)
        assert col.symbols_lo.dtype == np.uint8

    def test_validate_passes_on_fresh_summary(self, rng):
        series = make_series(rng.normal(5, 2.0, 300))
        build_summary(series, block_size=32).validate(series)

    def test_validate_catches_corrupted_bound(self, rng):
        series = make_series(rng.normal(0, 1.0, 128))
        summary = build_summary(series, block_size=32)
        summary.column("val").block_lo[1] = 1e9
        with pytest.raises(DataError, match="lower envelope"):
            summary.validate(series)

    def test_validate_catches_stale_length(self):
        summary = build_summary(make_series([1.0, 2.0, 3.0]))
        with pytest.raises(DataError, match="stale"):
            summary.validate(make_series([1.0, 2.0, 3.0, 4.0]))

    def test_nan_values_excluded_from_envelope(self):
        values = [1.0, np.nan, 3.0, np.nan]
        summary = build_summary(make_series(values), block_size=2)
        col = summary.column("val")
        assert col.global_lo == 1.0 and col.global_hi == 3.0
        assert col.finite_count == 2

    def test_all_nan_block_marked_empty(self):
        values = [1.0, 2.0, np.nan, np.nan]
        col = build_summary(make_series(values),
                            block_size=2).column("val")
        assert list(col.block_empty) == [False, True]
        mask = col.blocks_possible(-np.inf, np.inf, False, False)
        assert list(mask) == [True, False]

    def test_flat_column_uses_exact_mode(self):
        col = build_summary(make_series([7.0] * 130),
                            block_size=64).column("val")
        assert col.exact
        assert np.all(col.block_lo == 7.0)
        assert np.all(col.block_hi == 7.0)

    def test_object_column_unsupported(self):
        series = make_series([1.0, 2.0],
                             extra={"tag": np.asarray(["a", "b"],
                                                      dtype=object)})
        col = build_summary(series).column("tag")
        assert not col.supported
        assert col.blocks_possible(0.0, 1.0, False, False).all()
        assert col.interval_possible(0.0, 1.0, False, False)

    def test_bad_block_size_rejected(self):
        with pytest.raises(DataError):
            build_summary(make_series([1.0]), block_size=0)

    def test_num_blocks_is_ceiling(self):
        summary = build_summary(make_series(np.arange(65.0)),
                                block_size=64)
        assert summary.num_blocks == 2
        assert summary.block_range(1) == (64, 64)


class TestIntervalProbes:
    def test_global_envelope_excludes_impossible_interval(self, rng):
        col = build_summary(
            make_series(rng.uniform(10.0, 20.0, 200))).column("val")
        assert not col.interval_possible(30.0, 40.0, False, False)
        assert col.interval_possible(15.0, 16.0, False, False)

    def test_open_endpoints_exclude_boundary(self):
        col = build_summary(make_series([5.0, 5.0])).column("val")
        assert col.interval_possible(5.0, 9.0, False, False)
        assert not col.interval_possible(5.0, 9.0, True, False)
        assert not col.interval_possible(0.0, 5.0, False, True)

    def test_blocks_possible_is_sound(self, rng):
        values = rng.normal(0, 5.0, 640)
        col = build_summary(make_series(values),
                            block_size=64).column("val")
        lo, hi = 4.0, 6.0
        mask = col.blocks_possible(lo, hi, False, False)
        for k in range(col.num_blocks):
            block = values[k * 64:(k + 1) * 64]
            has_witness = bool(np.any((block >= lo) & (block <= hi)))
            if has_witness:            # excluded block ⇒ provably none
                assert mask[k]

    def test_no_finite_values_means_nothing_possible(self):
        col = build_summary(
            make_series([np.nan, np.nan])).column("val")
        assert not col.interval_possible(-np.inf, np.inf, False, False)


class TestCache:
    def test_summary_cached_per_series(self, rng):
        series = make_series(rng.normal(0, 1.0, 100))
        first = summary_for(series)
        second = summary_for(series)
        assert first is second
        counts = cache_counters()
        assert counts["index_built"] == 1
        assert counts["index_cached"] == 1

    def test_block_size_change_is_stale(self, rng):
        series = make_series(rng.normal(0, 1.0, 100))
        summary_for(series, block_size=64)
        rebuilt = summary_for(series, block_size=32)
        assert rebuilt.block_size == 32
        assert cache_counters()["index_stale"] == 1

    def test_counters_argument_receives_events(self, rng):
        from collections import Counter
        series = make_series(rng.normal(0, 1.0, 50))
        local = Counter()
        summary_for(series, counters=local)
        summary_for(series, counters=local)
        assert local["index_built"] == 1
        assert local["index_cached"] == 1

    def test_clear_cache_resets(self, rng):
        series = make_series(rng.normal(0, 1.0, 50))
        summary_for(series)
        clear_cache()
        assert cache_counters() == {}
        summary_for(series)
        assert cache_counters()["index_built"] == 1


class TestQuantizationEdgeCases:
    def test_single_point_series(self):
        summary = build_summary(make_series([3.0]))
        assert isinstance(summary, SeriesSummary)
        summary.validate(make_series([3.0]))

    def test_empty_series(self):
        series = Series({"tstamp": np.asarray([], dtype=np.float64),
                         "val": np.asarray([], dtype=np.float64)},
                        "tstamp")
        summary = build_summary(series)
        assert summary.num_blocks == 0
        summary.validate(series)

    def test_infinite_values_fall_back_to_exact(self):
        col = build_summary(
            make_series([1.0, np.inf, -np.inf, 2.0]),
            block_size=2).column("val")
        assert col.exact
        col.validate(np.asarray([1.0, np.inf, -np.inf, 2.0]))

    def test_extreme_dynamic_range_stays_sound(self, rng):
        values = np.concatenate([rng.uniform(-1e-9, 1e-9, 100),
                                 rng.uniform(1e9, 2e9, 100)])
        series = make_series(values)
        build_summary(series, block_size=8).validate(series)

    def test_symbols_fit_alphabet(self, rng):
        col = build_summary(make_series(rng.normal(0, 1.0, 1000)),
                            block_size=16).column("val")
        assert int(col.symbols_lo.max()) < SYMBOLS
        assert int(col.symbols_hi.max()) < SYMBOLS

    def test_default_block_size_matches_cost_params(self):
        from repro.optimizer.cost_params import \
            DEFAULT_PREFILTER_BLOCK_SIZE
        assert DEFAULT_BLOCK_SIZE == DEFAULT_PREFILTER_BLOCK_SIZE
