"""Logical plan construction: window embedding, push-down, boundary kinds."""

import pytest

from repro.errors import PlanError
from repro.lang.query import compile_query
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LVar,
                                build_logical_plan, walk)


def plan_for(text, params=None):
    return build_logical_plan(compile_query(text, params))


class TestWindowEmbedding:
    def test_window_leaf_absorbed_into_and(self):
        plan = plan_for("ORDER BY t\nPATTERN (A & WIN)\n"
                        "DEFINE SEGMENT A AS last(A.v) > 1,\n"
                        "SEGMENT WIN AS window(2, 9)")
        # The And collapses: only the A leaf remains, window embedded.
        assert isinstance(plan, LVar)
        assert plan.var.name == "A"
        assert not plan.window.is_wild

    def test_multiple_children_keep_and(self):
        plan = plan_for("ORDER BY t\nPATTERN (A & B & WIN)\n"
                        "DEFINE SEGMENT A AS last(A.v) > 1,\n"
                        "SEGMENT B AS first(B.v) < 9,\n"
                        "SEGMENT WIN AS window(2, 9)")
        assert isinstance(plan, LAnd)
        assert len(plan.parts) == 2
        for part in plan.parts:
            lo, hi = part.window.point_duration_bounds()
            assert (lo, hi) == (2, 9)

    def test_pure_window_pattern(self):
        plan = plan_for("ORDER BY t\nPATTERN (WIN)\n"
                        "DEFINE SEGMENT WIN AS window(1, 4)")
        assert isinstance(plan, LVar)

    def test_point_var_gets_zero_duration_window(self):
        plan = plan_for("ORDER BY t\nPATTERN (A B)\nDEFINE A AS v < 1")
        leaves = [n for n in walk(plan) if isinstance(n, LVar)]
        for leaf in leaves:
            lo, hi = leaf.window.point_duration_bounds()
            assert (lo, hi) == (0, 0)


class TestWindowPushDown:
    TEXT = """
    ORDER BY t
    PATTERN ((W1 (DOWN & W2) W1) & WIN)
    DEFINE SEGMENT W1 AS true,
      SEGMENT W2 AS window(1, 5),
      SEGMENT DOWN AS last(DOWN.v) < first(DOWN.v),
      SEGMENT WIN AS window(25, 30)
    """

    def test_upper_bound_reaches_leaves(self):
        plan = plan_for(self.TEXT)
        leaves = {n.var.name: n for n in walk(plan) if isinstance(n, LVar)}
        lo, hi = leaves["W1"].window.point_duration_bounds()
        assert (lo, hi) == (0, 30)  # relaxed: no lower bound
        lo, hi = leaves["DOWN"].window.point_duration_bounds()
        assert (lo, hi) == (1, 5)   # own window survives; upper 30 added

    def test_lower_bound_not_pushed_through_concat(self):
        plan = plan_for(self.TEXT)
        concat = next(n for n in walk(plan) if isinstance(n, LConcat))
        lo, hi = concat.window.point_duration_bounds()
        assert lo == 25  # the Concat node itself keeps the lower bound

    def test_and_pushes_full_window(self):
        plan = plan_for("ORDER BY t\nPATTERN (A & B & WIN)\n"
                        "DEFINE SEGMENT A AS last(A.v) > 1,\n"
                        "SEGMENT B AS first(B.v) < 9,\n"
                        "SEGMENT WIN AS window(3, 9)")
        for leaf in (n for n in walk(plan) if isinstance(n, LVar)):
            lo, hi = leaf.window.point_duration_bounds()
            assert lo == 3  # lower bound kept across And

    def test_kleene_child_relaxed(self):
        plan = plan_for("ORDER BY t\nPATTERN ((UP & W)+) & WIN\n"
                        "DEFINE SEGMENT W AS window(2, 4),\n"
                        "SEGMENT UP AS last(UP.v) > first(UP.v),\n"
                        "SEGMENT WIN AS window(6, 12)")
        kleene = next(n for n in walk(plan) if isinstance(n, LKleene))
        lo, hi = kleene.child.window.point_duration_bounds()
        assert (lo, hi) == (2, 4)  # own bounds kept, parent's lower relaxed
        klo, khi = kleene.window.point_duration_bounds()
        assert (klo, khi) == (6, 12)


class TestBoundaryKinds:
    def test_point_point_gap(self):
        plan = plan_for("ORDER BY t\nPATTERN (A B)\nDEFINE A AS v < 1")
        assert isinstance(plan, LConcat)
        assert plan.gaps == (1,)

    def test_segment_involvement_shares_boundary(self):
        plan = plan_for("ORDER BY t\nPATTERN (A W)\nDEFINE A AS v < 1,\n"
                        "SEGMENT W AS true")
        assert plan.gaps == (0,)

    def test_mixed_chain(self):
        plan = plan_for("ORDER BY t\nPATTERN (A B W)\nDEFINE A AS v < 1,\n"
                        "B AS v > 0, SEGMENT W AS true")
        assert plan.gaps == (1, 0)

    def test_kleene_gap_from_child_kinds(self):
        plan = plan_for("ORDER BY t\nPATTERN (A+) & WIN\nDEFINE A AS v < 1,"
                        "\nSEGMENT WIN AS window(0, 9)")
        kleene = next(n for n in walk(plan) if isinstance(n, LKleene))
        assert kleene.gap == 1

    def test_segment_kleene_gap_zero(self):
        plan = plan_for("ORDER BY t\nPATTERN ((S & W)+) & WIN\n"
                        "DEFINE SEGMENT S AS last(S.v) > 1,\n"
                        "SEGMENT W AS window(1, 3),\n"
                        "SEGMENT WIN AS window(0, 9)")
        kleene = next(n for n in walk(plan) if isinstance(n, LKleene))
        assert kleene.gap == 0


class TestProvidesRequires:
    TEXT = """
    ORDER BY t
    PATTERN (UP GAP X) & WIN
    DEFINE SEGMENT UP AS last(UP.v) > 1,
      SEGMENT GAP AS true,
      SEGMENT X AS corr(X.v, UP.v) > 0.5,
      SEGMENT WIN AS window(0, 20)
    """

    def test_leaf_requires(self):
        plan = plan_for(self.TEXT)
        leaves = {n.var.name: n for n in walk(plan) if isinstance(n, LVar)}
        assert leaves["X"].requires == frozenset({"UP"})
        assert leaves["UP"].requires == frozenset()

    def test_subtree_requires_closed(self):
        plan = plan_for(self.TEXT)
        # At the root, UP is provided internally, so nothing is required.
        assert plan.requires == frozenset()
        assert "UP" in plan.provides and "X" in plan.provides

    def test_not_provides_nothing(self):
        plan = plan_for("ORDER BY t\nPATTERN R & WIN & ~(F W)\n"
                        "DEFINE SEGMENT R AS last(R.v) > 1,\n"
                        "SEGMENT WIN AS window(0, 9),\n"
                        "SEGMENT F AS last(F.v) < 1, SEGMENT W AS true")
        negation = next(n for n in walk(plan) if isinstance(n, LNot))
        assert negation.provides == frozenset()

    def test_reference_to_missing_variable_rejected(self):
        # GHOST appears in the pattern nowhere -> the binder rejects it
        # before planning even starts.
        from repro.errors import BindError
        with pytest.raises(BindError):
            plan_for("ORDER BY t\nPATTERN (X)\n"
                     "DEFINE SEGMENT X AS corr(X.v, GHOST.v) > 0.5")


class TestDescribe:
    def test_describe_smoke(self):
        plan = plan_for("ORDER BY t\nPATTERN ((A | B) C?) & WIN\n"
                        "DEFINE A AS v < 1, B AS v > 2, C AS v = 0,\n"
                        "SEGMENT WIN AS window(0, 9)")
        text = plan.describe()
        assert "A" in text and "|" in text


class TestOptionalNormalization:
    def test_optional_point_in_concat(self):
        from repro.core.bruteforce import BruteForceMatcher
        from tests.conftest import make_series
        query = compile_query("ORDER BY tstamp\nPATTERN (A? B)\n"
                              "DEFINE A AS val > 0, B AS val < 0")
        series = make_series([1, -1, -2, 1])
        got = sorted(BruteForceMatcher(query).match_series(series))
        # B alone: indices 1, 2; A B: (0,1).
        assert got == [(0, 1), (1, 1), (2, 2)]

    def test_star_point_in_concat(self):
        from repro.core.bruteforce import BruteForceMatcher
        from tests.conftest import make_series
        query = compile_query("ORDER BY tstamp\nPATTERN (A* B)\n"
                              "DEFINE A AS val > 0, B AS val < 0")
        series = make_series([1, 1, -1])
        got = sorted(BruteForceMatcher(query).match_series(series))
        assert got == [(0, 2), (1, 2), (2, 2)]

    def test_bare_optional_becomes_single(self):
        query = compile_query("ORDER BY tstamp\nPATTERN (A?)\n"
                              "DEFINE A AS val > 0")
        plan = build_logical_plan(query)
        assert isinstance(plan, LVar)

    def test_all_optional_rejected(self):
        from repro.errors import PlanError
        query = compile_query("ORDER BY tstamp\nPATTERN (A? B?)\n"
                              "DEFINE A AS val > 0, B AS val < 0")
        # Expansion keeps the non-empty variants; empty-only would raise.
        plan = build_logical_plan(query)
        assert plan is not None

    def test_segment_star_still_rejected(self):
        from repro.errors import PlanError
        from repro.core.bruteforce import BruteForceMatcher
        from tests.conftest import make_series
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S*) & WIN\n"
            "DEFINE SEGMENT S AS last(S.val) > 0,\n"
            "SEGMENT WIN AS window(0, 5)")
        series = make_series([1, 2])
        with pytest.raises(PlanError):
            BruteForceMatcher(query).match_series(series)

    def test_engine_agrees_on_optionals(self):
        import numpy as np
        from repro.core.bruteforce import BruteForceMatcher
        from repro.core.engine import TRexEngine
        from tests.conftest import make_series
        query = compile_query("ORDER BY tstamp\nPATTERN (A? B C?) & WIN\n"
                              "DEFINE A AS val > 0, B AS val < 0,\n"
                              "C AS val = 0, SEGMENT WIN AS window(0, 4)")
        rng = np.random.default_rng(3)
        series = make_series(rng.choice([-1.0, 0.0, 1.0], size=14))
        expected = sorted(BruteForceMatcher(query).match_series(series))
        got = TRexEngine().execute_query(query, [series]).per_series[0].matches
        assert got == expected
