"""Plan validator tests: every planner output must validate cleanly."""

import numpy as np
import pytest

from repro.baselines.naive_tree import NaiveTreeExecutor
from repro.lang.query import compile_query
from repro.optimizer.planner import CostBasedPlanner
from repro.optimizer.rulebased import (BASELINE_STRATEGIES_WITH_NOT,
                                       RuleBasedPlanner)
from repro.optimizer.validator import validate_plan
from repro.queries import TEMPLATES

from tests.conftest import make_series

QUERIES = {
    "plain": """
        ORDER BY tstamp
        PATTERN ((DN & W) (UP & W)) & WINDOW
        DEFINE SEGMENT W AS window(2, null),
          SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.8,
          SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.8,
          SEGMENT WINDOW AS window(1, 12)
    """,
    "refs": """
        ORDER BY tstamp
        PATTERN (UP GAP X) & WINDOW
        DEFINE SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.7,
          SEGMENT GAP AS true,
          SEGMENT X AS corr(X.val, UP.val) >= 0.9 AND window(2, 4),
          SEGMENT WINDOW AS window(4, 12)
    """,
    "not": """
        ORDER BY tstamp
        PATTERN RISE & WINDOW & ~(FALL W)
        DEFINE SEGMENT W AS true,
          SEGMENT RISE AS last(RISE.val) / first(RISE.val) > 1.02,
          SEGMENT WINDOW AS window(1, 8),
          SEGMENT FALL AS last(FALL.val) / first(FALL.val) < 0.99
    """,
}


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("strategy", BASELINE_STRATEGIES_WITH_NOT,
                         ids=lambda s: s.label)
def test_rule_plans_validate(name, strategy):
    query = compile_query(QUERIES[name])
    plan = RuleBasedPlanner(strategy).plan(query)
    assert validate_plan(plan) == []


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_cost_plans_validate(name):
    rng = np.random.default_rng(0)
    series = [make_series(np.cumsum(rng.normal(0, 1, 40)) + 50)]
    query = compile_query(QUERIES[name])
    plan = CostBasedPlanner().plan(query, None, series)
    assert validate_plan(plan) == []


@pytest.mark.parametrize("template", TEMPLATES, ids=lambda t: t.name)
def test_template_cost_plans_validate(template):
    from repro.datasets import load
    table = load(template.dataset, num_series=2,
                 length=80 if template.dataset != "covid19" else 64)
    query = template.compile(template.param_sets()[0])
    series = table.partition(query.partition_by, query.order_by)
    plan = CostBasedPlanner().plan(query, None, series)
    assert validate_plan(plan) == []


def test_naive_tree_plans_validate():
    query = compile_query(QUERIES["refs"])
    for flavour in ("zstream", "opencep"):
        executor = NaiveTreeExecutor(query, flavour)
        assert validate_plan(executor.plan) == []


def test_violation_detected():
    """A hand-built broken plan (consumer without provider) is flagged."""
    from repro.exec.concat import SortMergeConcat
    from repro.exec.seggen import SegGenFilter, SegGenWindow
    from repro.lang.parser import parse_condition
    from repro.lang.query import VarDef
    from repro.lang.windows import WindowConjunction

    wild = WindowConjunction.wild()
    consumer = VarDef("X", True, (),
                      parse_condition("corr(X.val, UP.val) > 0.5"),
                      frozenset({"UP"}))
    left = SegGenWindow(wild, "UP")  # does NOT publish UP
    right = SegGenFilter(consumer, wild)
    plan = SortMergeConcat(left, right, 0, wild,
                           requires=frozenset({"UP"}))
    violations = validate_plan(plan)
    assert violations
    assert any("UP" in violation for violation in violations)
