"""SearchSpace algebra tests."""

from repro.plan.search_space import SearchSpace


class TestBasics:
    def test_full(self):
        sp = SearchSpace.full(10)
        assert (sp.s_lo, sp.s_hi, sp.e_lo, sp.e_hi) == (0, 9, 0, 9)
        assert sp.start_range_size == 10
        assert sp.end_range_size == 10
        assert sp.span_size == 10

    def test_exact(self):
        sp = SearchSpace.exact(3, 7)
        assert sp.contains(3, 7)
        assert not sp.contains(3, 8)
        assert sp.start_range_size == 1

    def test_contains_requires_order(self):
        sp = SearchSpace.full(10)
        assert not sp.contains(5, 3)

    def test_empty(self):
        assert SearchSpace(5, 3, 0, 9).is_empty()
        assert SearchSpace(8, 9, 0, 3).is_empty()  # s_lo > e_hi
        assert not SearchSpace.full(4).is_empty()

    def test_clamp(self):
        sp = SearchSpace(-5, 100, -2, 200).clamp(10)
        assert (sp.s_lo, sp.s_hi, sp.e_lo, sp.e_hi) == (0, 9, 0, 9)

    def test_intersect(self):
        a = SearchSpace(0, 8, 2, 9)
        b = SearchSpace(3, 10, 0, 5)
        c = a.intersect(b)
        assert (c.s_lo, c.s_hi, c.e_lo, c.e_hi) == (3, 8, 2, 5)


class TestConcatPropagation:
    def test_left_child_expands_ends(self):
        sp = SearchSpace(2, 4, 7, 9)
        left = sp.concat_left(0)
        assert (left.s_lo, left.s_hi) == (2, 4)
        assert (left.e_lo, left.e_hi) == (2, 9)

    def test_right_child_expands_starts(self):
        sp = SearchSpace(2, 4, 7, 9)
        right = sp.concat_right(0)
        assert (right.s_lo, right.s_hi) == (2, 9)
        assert (right.e_lo, right.e_hi) == (7, 9)

    def test_gap_shifts_boundaries(self):
        sp = SearchSpace(0, 5, 5, 9)
        assert sp.concat_left(1).e_hi == 8
        assert sp.concat_right(1).s_lo == 1

    def test_probe_right(self):
        sp = SearchSpace(0, 9, 0, 9)
        probe = sp.probe_right_of_concat(4, 0)
        assert (probe.s_lo, probe.s_hi) == (4, 4)
        assert (probe.e_lo, probe.e_hi) == (0, 9)

    def test_probe_left(self):
        sp = SearchSpace(0, 9, 0, 9)
        probe = sp.probe_left_of_concat(6, 1)
        assert (probe.e_lo, probe.e_hi) == (5, 5)

    def test_kleene_child_spans(self):
        sp = SearchSpace(2, 4, 7, 9)
        child = sp.kleene_child()
        assert (child.s_lo, child.s_hi) == (2, 9)
        assert (child.e_lo, child.e_hi) == (2, 9)

    def test_describe(self):
        assert "S=[0,3]" in SearchSpace(0, 3, 1, 2).describe()
