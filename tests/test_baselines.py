"""Baseline executor tests beyond the differential suite."""

import numpy as np
import pytest

from repro.baselines import make_executor
from repro.baselines.afa import AFAExecutor
from repro.baselines.naive_tree import NaiveTreeExecutor, NestedLoopAnd
from repro.baselines.nested_afa import NestedAFAExecutor
from repro.errors import PlanError
from repro.lang.query import compile_query

from tests.conftest import make_series

NOT_QUERY = """
ORDER BY tstamp
PATTERN RISE & WINDOW & ~(FALL W)
DEFINE SEGMENT W AS true,
  SEGMENT RISE AS last(RISE.val) / first(RISE.val) > 1.02,
  SEGMENT WINDOW AS window(1, 8),
  SEGMENT FALL AS last(FALL.val) / first(FALL.val) < 0.99
"""

PLAIN_QUERY = """
ORDER BY tstamp
PATTERN (UP & W) & WINDOW
DEFINE SEGMENT W AS window(2, null),
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.8,
  SEGMENT WINDOW AS window(1, 10)
"""


def series(seed=0, n=28):
    rng = np.random.default_rng(seed)
    return make_series(np.cumsum(rng.normal(0, 1, n)) + 50)


class TestAFA:
    def test_sharing_does_not_change_results(self):
        query = compile_query(PLAIN_QUERY)
        s = series()
        with_sharing = AFAExecutor(query, sharing=True).match_series(s)
        without = AFAExecutor(query, sharing=False).match_series(s)
        assert with_sharing == without

    def test_sharing_builds_indexes(self):
        query = compile_query(PLAIN_QUERY)
        executor = AFAExecutor(query, sharing=True)
        executor.match_series(series())
        assert executor._ctx.stats["index_builds"] >= 1

    def test_hand_tuned_ordering_same_results(self):
        query = compile_query(PLAIN_QUERY)
        s = series(1)
        tuned = AFAExecutor(query, hand_tuned=True).match_series(s)
        untuned = AFAExecutor(query, hand_tuned=False).match_series(s)
        assert tuned == untuned

    def test_state_merging_memoizes(self):
        query = compile_query(PLAIN_QUERY)
        executor = AFAExecutor(query)
        executor.match_series(series())
        assert executor._ends_memo  # merged states were recorded


class TestNestedAFA:
    def test_nested_detection(self):
        assert NestedAFAExecutor(compile_query(NOT_QUERY)).is_nested
        assert not NestedAFAExecutor(compile_query(PLAIN_QUERY)).is_nested

    def test_reverts_to_afa_without_nesting(self):
        query = compile_query(PLAIN_QUERY)
        s = series(2)
        assert NestedAFAExecutor(query).match_series(s) == \
            AFAExecutor(query).match_series(s)

    def test_nested_matches_afa_on_not_query(self):
        query = compile_query(NOT_QUERY)
        s = series(3)
        assert NestedAFAExecutor(query).match_series(s) == \
            AFAExecutor(query).match_series(s)


class TestNaiveTrees:
    def test_flavours(self):
        query = compile_query(PLAIN_QUERY)
        assert NaiveTreeExecutor(query, "zstream").name == "ZStream"
        assert NaiveTreeExecutor(query, "opencep").name == "OpenCEP"
        with pytest.raises(PlanError):
            NaiveTreeExecutor(query, "esper")

    def test_opencep_uses_nested_loop_and(self):
        query = compile_query(PLAIN_QUERY)
        executor = NaiveTreeExecutor(query, "opencep")

        def ops(op):
            yield type(op).__name__
            for child in op.children():
                yield from ops(child)

        # The And in this query collapses via window embedding, so check a
        # query with a real And instead.
        query2 = compile_query(
            "ORDER BY tstamp\nPATTERN (A & B) & WINDOW\n"
            "DEFINE SEGMENT A AS last(A.val) > first(A.val),\n"
            "SEGMENT B AS last(B.val) - first(B.val) < 5,\n"
            "SEGMENT WINDOW AS window(1, 6)")
        executor2 = NaiveTreeExecutor(query2, "opencep")
        assert "NestedLoopAnd" in list(ops(executor2.plan))
        executor3 = NaiveTreeExecutor(query2, "zstream")
        assert "NestedLoopAnd" not in list(ops(executor3.plan))
        del executor

    def test_window_unaware_kleene(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN ((UP & W)+) & WINDOW\n"
            "DEFINE SEGMENT W AS window(1, 2),\n"
            "SEGMENT UP AS last(UP.val) > first(UP.val),\n"
            "SEGMENT WINDOW AS window(1, 6)")
        executor = NaiveTreeExecutor(query, "zstream")

        def find_kleene(op):
            if type(op).__name__ == "MaterializeKleene":
                return op
            for child in op.children():
                found = find_kleene(child)
                if found is not None:
                    return found
            return None

        kleene = find_kleene(executor.plan)
        assert kleene is not None and not kleene.window_aware

    def test_sharing_toggle(self):
        query = compile_query(PLAIN_QUERY)
        s = series(4)
        on = NaiveTreeExecutor(query, "zstream", sharing=True)
        off = NaiveTreeExecutor(query, "zstream", sharing=False)
        assert on.match_series(s) == off.match_series(s)


class TestFactory:
    def test_labels(self):
        query = compile_query(PLAIN_QUERY)
        for label, expected in [("trex", "T-ReX"),
                                ("trex-batch", "T-ReX Batch"),
                                ("afa", "AFA"),
                                ("nested-afa", "Nested-AFA"),
                                ("zstream", "ZStream"),
                                ("opencep", "OpenCEP")]:
            assert make_executor(label, query).name == expected

    def test_unknown_label(self):
        with pytest.raises(PlanError):
            make_executor("trino", compile_query(PLAIN_QUERY))
