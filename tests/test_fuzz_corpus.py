"""Replay the committed fuzzer reproducers (tests/corpus/*.json).

Every file under tests/corpus/ is a minimized (query, series) case that
once exposed a real bug — an executor disagreeing with the brute-force
matcher, a crash, or a planner error.  Replaying them through the full
backend matrix pins each fix; see docs/FUZZING.md for the corpus format.
"""

import glob
import json
import os

import pytest

from repro.testing.fuzz import BACKENDS, replay_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS, "tests/corpus/ must hold the fuzzer-found reproducers"


@pytest.mark.parametrize("path", CORPUS, ids=[os.path.basename(p)[:-5]
                                              for p in CORPUS])
def test_corpus_case_replays_clean(path):
    with open(path) as handle:
        case = json.load(handle)
    discrepancies = replay_case(case, backends=list(BACKENDS.keys()))
    detail = "; ".join(f"{d.backend}: {d.detail}" for d in discrepancies)
    assert not discrepancies, f"{case['detail']} -> {detail}"
