"""Aggregate tests: direct evaluation, indexes, registry, properties."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.base import Aggregate
from repro.aggregates.correlation import Correlation
from repro.aggregates.linreg import (LinearRegressionR2,
                                     LinearRegressionR2Signed)
from repro.aggregates.mann_kendall import MannKendallTest, mann_kendall_z
from repro.aggregates.outlier import ZScoreOutlier
from repro.aggregates.prefix import PrefixSums, SparseTable
from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.aggregates.ticks import EqualUpDownTicks
from repro.errors import AggregateError

floats = st.floats(min_value=-100, max_value=100, allow_nan=False,
                   allow_infinity=False)
value_lists = st.lists(floats, min_size=2, max_size=40)


class TestPrefixSums:
    def test_range_sum(self):
        sums = PrefixSums(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert sums.range_sum(1, 2) == 5.0
        assert sums.range_sum(0, 3) == 10.0

    def test_range_mean(self):
        sums = PrefixSums(np.asarray([2.0, 4.0, 6.0]))
        assert sums.range_mean(0, 2) == 4.0

    @given(value_lists)
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy(self, values):
        arr = np.asarray(values)
        sums = PrefixSums(arr)
        for start in range(0, len(arr), max(len(arr) // 4, 1)):
            for end in range(start, len(arr), max(len(arr) // 4, 1)):
                assert sums.range_sum(start, end) == pytest.approx(
                    float(np.sum(arr[start:end + 1])), abs=1e-6)


class TestSparseTable:
    @given(value_lists, st.sampled_from(["min", "max"]))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy(self, values, mode):
        arr = np.asarray(values)
        table = SparseTable(arr, mode)
        reducer = np.min if mode == "min" else np.max
        for start in range(len(arr)):
            end = min(start + 5, len(arr) - 1)
            assert table.query(start, end) == pytest.approx(
                float(reducer(arr[start:end + 1])))


class TestLinearRegression:
    def test_perfect_fit(self):
        agg = LinearRegressionR2()
        x = np.arange(10.0)
        y = 3 * x + 1
        assert agg.evaluate([x, y], []) == pytest.approx(1.0)

    def test_signed_direction(self):
        agg = LinearRegressionR2Signed()
        x = np.arange(10.0)
        assert agg.evaluate([x, -2 * x], []) == pytest.approx(-1.0)
        assert agg.evaluate([x, 2 * x], []) == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        agg = LinearRegressionR2()
        x = np.arange(5.0)
        assert agg.evaluate([x, np.ones(5)], []) == 0.0

    def test_single_point_is_zero(self):
        agg = LinearRegressionR2()
        assert agg.evaluate([np.asarray([1.0]), np.asarray([2.0])], []) == 0.0

    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_index_matches_direct(self, values):
        agg = LinearRegressionR2Signed()
        x = np.arange(float(len(values)))
        y = np.asarray(values)
        index = agg.build_index([x, y], [])
        for start in range(0, len(values) - 1, max(len(values) // 5, 1)):
            end = min(start + 7, len(values) - 1)
            direct = agg.evaluate([x[start:end + 1], y[start:end + 1]], [])
            # Prefix-sum moments trade a little precision for O(1) lookups
            # (catastrophic cancellation on near-constant data).
            assert index.lookup(start, end) == pytest.approx(direct,
                                                             abs=5e-3)

    def test_r2_bounded(self):
        agg = LinearRegressionR2()
        rng = np.random.default_rng(0)
        x = rng.normal(size=30)
        x.sort()
        y = rng.normal(size=30)
        value = agg.evaluate([x, y], [])
        assert 0.0 <= value <= 1.0


class TestMannKendall:
    def test_monotone_up_is_positive(self):
        values = np.arange(20.0)
        assert mann_kendall_z(values) > 3.0

    def test_monotone_down_is_negative(self):
        assert mann_kendall_z(np.arange(20.0)[::-1]) < -3.0

    def test_short_series_zero(self):
        assert mann_kendall_z(np.asarray([1.0])) == 0.0

    @given(value_lists)
    @settings(max_examples=30, deadline=None)
    def test_index_matches_direct(self, values):
        agg = MannKendallTest()
        arr = np.asarray(values)
        index = agg.build_index([arr], [])
        for start in range(0, len(arr), max(len(arr) // 4, 1)):
            end = min(start + 8, len(arr) - 1)
            direct = agg.evaluate([arr[start:end + 1]], [])
            assert index.lookup(start, end) == pytest.approx(direct,
                                                             abs=1e-9)

    def test_materialize_all(self):
        agg = MannKendallTest()
        arr = np.arange(12.0)
        index = agg.build_index([arr], [])
        index.materialize_all()
        assert index.lookup(0, 11) > 3.0


class TestZScoreOutlier:
    def test_detects_spike(self):
        agg = ZScoreOutlier()
        values = np.concatenate([np.zeros(10) + np.linspace(0, 0.1, 10),
                                 [5.0]])
        score = agg.evaluate_with_context(values, 10, 10, [10])
        assert score > 3.0

    def test_no_context_is_zero(self):
        agg = ZScoreOutlier()
        assert agg.evaluate_with_context(np.asarray([1.0, 2.0]), 1, 1,
                                         [5]) == 0.0

    def test_constant_context_is_zero(self):
        agg = ZScoreOutlier()
        values = np.asarray([1.0] * 8 + [9.0])
        assert agg.evaluate_with_context(values, 8, 8, [5]) == 0.0

    def test_multi_point_segment_rejected(self):
        agg = ZScoreOutlier()
        with pytest.raises(AggregateError):
            agg.evaluate_with_context(np.zeros(10), 3, 5, [4])

    def test_small_context_rejected(self):
        agg = ZScoreOutlier()
        with pytest.raises(AggregateError):
            agg.evaluate_with_context(np.zeros(10), 5, 5, [1])

    def test_plain_evaluate_rejected(self):
        with pytest.raises(AggregateError):
            ZScoreOutlier().evaluate([np.zeros(3)], [2])


class TestCorrelation:
    def test_perfect(self):
        agg = Correlation()
        a = np.arange(10.0)
        assert agg.evaluate([a, 2 * a + 3], []) == pytest.approx(1.0)

    def test_anti(self):
        agg = Correlation()
        a = np.arange(10.0)
        assert agg.evaluate([a, -a], []) == pytest.approx(-1.0)

    def test_unequal_lengths_use_prefix(self):
        agg = Correlation()
        a = np.arange(10.0)
        b = np.arange(6.0)
        assert agg.evaluate([a, b], []) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        agg = Correlation()
        assert agg.evaluate([np.ones(5), np.arange(5.0)], []) == 0.0

    def test_too_short_is_zero(self):
        agg = Correlation()
        assert agg.evaluate([np.asarray([1.0]), np.asarray([2.0])], []) == 0.0


class TestEqualUpDownTicks:
    def test_balanced(self):
        agg = EqualUpDownTicks()
        assert agg.evaluate([np.asarray([1.0, 2.0, 1.0])], []) == 1.0

    def test_unbalanced(self):
        agg = EqualUpDownTicks()
        assert agg.evaluate([np.asarray([1.0, 2.0, 3.0])], []) == 0.0

    def test_flat_ticks_ignored(self):
        agg = EqualUpDownTicks()
        assert agg.evaluate([np.asarray([1.0, 1.0, 1.0])], []) == 1.0

    @given(value_lists)
    @settings(max_examples=30, deadline=None)
    def test_index_matches_direct(self, values):
        agg = EqualUpDownTicks()
        arr = np.asarray(values)
        index = agg.build_index([arr], [])
        for start in range(0, len(arr), max(len(arr) // 4, 1)):
            end = min(start + 6, len(arr) - 1)
            assert index.lookup(start, end) == agg.evaluate(
                [arr[start:end + 1]], [])


class TestBasicAggregates:
    @pytest.mark.parametrize("name,expected", [
        ("sum", 10.0), ("avg", 2.5), ("count", 4.0), ("min", 1.0),
        ("max", 4.0),
    ])
    def test_direct(self, name, expected):
        agg = DEFAULT_REGISTRY.get(name)
        assert agg.evaluate([np.asarray([1.0, 2.0, 3.0, 4.0])], []) == \
            expected

    @pytest.mark.parametrize("name", ["sum", "avg", "count", "min", "max",
                                      "stddev"])
    @given(values=value_lists)
    @settings(max_examples=20, deadline=None)
    def test_index_matches_direct(self, name, values):
        agg = DEFAULT_REGISTRY.get(name)
        arr = np.asarray(values)
        index = agg.build_index([arr], [])
        for start in range(0, len(arr), max(len(arr) // 3, 1)):
            end = min(start + 5, len(arr) - 1)
            assert index.lookup(start, end) == pytest.approx(
                agg.evaluate([arr[start:end + 1]], []), abs=5e-3)


class TestRegistry:
    def test_builtins_present(self):
        for name in ["linear_regression_r2", "mann_kendall_test", "corr",
                     "zscore_outlier", "equal_up_down_ticks", "sum"]:
            assert name in DEFAULT_REGISTRY

    def test_alias_resolution(self):
        assert DEFAULT_REGISTRY.get("linear_reg_r2") is \
            DEFAULT_REGISTRY.get("linear_regression_r2")
        assert DEFAULT_REGISTRY.get("mann_kandall_test") is \
            DEFAULT_REGISTRY.get("mann_kendall_test")

    def test_case_insensitive(self):
        assert DEFAULT_REGISTRY.get("SUM").name == "sum"

    def test_unknown_raises(self):
        with pytest.raises(AggregateError):
            DEFAULT_REGISTRY.get("nope")

    def test_lookup_returns_none(self):
        assert DEFAULT_REGISTRY.lookup("nope") is None

    def test_duplicate_registration_rejected(self):
        registry = AggregateRegistry()
        registry.register(Correlation())
        with pytest.raises(AggregateError):
            registry.register(Correlation())

    def test_user_defined_aggregate(self):
        class Spread(Aggregate):
            name = "spread"
            direct_cost_shape = "L"

            def evaluate(self, arrays, extra):
                (values,) = arrays
                return float(np.max(values) - np.min(values))

        registry = AggregateRegistry()
        registry.register(Spread())
        assert registry.get("spread").evaluate(
            [np.asarray([1.0, 5.0])], []) == 4.0

    def test_invalid_cost_shape_rejected(self):
        class Bad(Aggregate):
            name = "bad"
            direct_cost_shape = "X"

            def evaluate(self, arrays, extra):
                return 0.0

        with pytest.raises(AggregateError):
            AggregateRegistry().register(Bad())

    def test_unnamed_rejected(self):
        class NoName(Aggregate):
            def evaluate(self, arrays, extra):
                return 0.0

        with pytest.raises(AggregateError):
            AggregateRegistry().register(NoName())

    def test_validate_call(self):
        agg = DEFAULT_REGISTRY.get("corr")
        with pytest.raises(AggregateError):
            agg.validate_call(1, 0)
        agg.validate_call(2, 0)

    def test_non_indexable_build_rejected(self):
        with pytest.raises(AggregateError):
            Correlation().build_index([np.zeros(3), np.zeros(3)], [])

    def test_non_numeric_rejected(self):
        agg = DEFAULT_REGISTRY.get("sum")
        with pytest.raises(AggregateError):
            agg.evaluate([np.asarray(["a", "b"], dtype=object)], [])
