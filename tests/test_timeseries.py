"""Unit tests for the time-series substrate (series, tables, segments)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.timeseries.segment import Segment
from repro.timeseries.series import Series
from repro.timeseries.table import Table
from repro.timeseries.timeunits import to_base_units

from tests.conftest import make_series


class TestSegment:
    def test_bounds_and_duration(self):
        segment = Segment(3, 7)
        assert segment.bounds == (3, 7)
        assert segment.duration == 4
        assert segment.num_points == 5

    def test_single_point(self):
        segment = Segment(5, 5)
        assert segment.is_point()
        assert segment.duration == 0

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Segment(7, 3)

    def test_equality_includes_payload(self):
        base = Segment(1, 4)
        with_ref = Segment(1, 4, {"UP": (0, 2)})
        assert base != with_ref
        assert with_ref == Segment(1, 4, {"UP": (0, 2)})

    def test_hash_consistency(self):
        a = Segment(1, 4, {"X": (0, 1)})
        b = Segment(1, 4, {"X": (0, 1)})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_with_payload_merges(self):
        segment = Segment(1, 4, {"A": (1, 2)})
        merged = segment.with_payload({"B": (3, 4)})
        assert merged.payload == {"A": (1, 2), "B": (3, 4)}
        # Original untouched.
        assert segment.payload == {"A": (1, 2)}

    def test_with_payload_empty_returns_self(self):
        segment = Segment(1, 4)
        assert segment.with_payload({}) is segment

    def test_project_payload(self):
        segment = Segment(1, 4, {"A": (1, 2), "B": (3, 4)})
        projected = segment.project_payload(frozenset({"B"}))
        assert projected.payload == {"B": (3, 4)}

    def test_without_payload(self):
        segment = Segment(1, 4, {"A": (1, 2)})
        assert segment.without_payload().payload == {}

    def test_payload_key_sorted(self):
        segment = Segment(0, 9, {"B": (1, 2), "A": (3, 4)})
        assert segment.payload_key() == (("A", (3, 4)), ("B", (1, 2)))

    def test_repr_mentions_refs(self):
        assert "UP" in repr(Segment(0, 3, {"UP": (0, 1)}))


class TestSeries:
    def test_basic_access(self):
        series = make_series([1.0, 2.0, 3.0])
        assert len(series) == 3
        assert series.value_at("val", 1) == 2.0
        assert list(series.values("val", 1, 2)) == [2.0, 3.0]

    def test_duration_uses_order_column(self):
        series = make_series([1, 2, 3], timestamps=[0.0, 10.0, 25.0])
        assert series.duration(0, 2) == 25.0

    def test_unsorted_order_column_rejected(self):
        with pytest.raises(DataError):
            make_series([1, 2, 3], timestamps=[2.0, 1.0, 3.0])

    def test_missing_order_column_rejected(self):
        with pytest.raises(DataError):
            Series({"val": [1.0]}, "tstamp")

    def test_ragged_columns_rejected(self):
        with pytest.raises(DataError):
            Series({"tstamp": [0.0, 1.0], "val": [1.0]}, "tstamp")

    def test_unknown_column_rejected(self):
        series = make_series([1.0])
        with pytest.raises(DataError):
            series.column("nope")

    def test_object_columns_allowed(self):
        series = make_series([1.0, 2.0],
                             extra={"name": np.asarray(["x", "y"],
                                                       dtype=object)})
        assert series.value_at("name", 1) == "y"

    def test_label(self):
        assert make_series([1.0], key=("NYC", 3)).label() == "NYC/3"
        assert make_series([1.0], key=()).label() == "<series>"

    def test_integer_columns_become_float(self):
        series = make_series([1, 2, 3])
        assert series.column("val").dtype == np.float64


class TestTable:
    def test_partition_by_key(self, small_table):
        series_list = small_table.partition(["ticker"], "tstamp")
        assert [s.key for s in series_list] == [("A",), ("B",)]
        assert all(len(s) == 30 for s in series_list)

    def test_partition_orders_rows(self):
        table = Table({"tstamp": [3.0, 1.0, 2.0], "val": [30, 10, 20]})
        (series,) = table.partition(None, "tstamp")
        assert list(series.column("val")) == [10.0, 20.0, 30.0]

    def test_partition_none_single_series(self, small_table):
        series_list = small_table.partition(None, "tstamp")
        assert len(series_list) == 1
        assert len(series_list[0]) == 60

    def test_unknown_partition_column(self, small_table):
        with pytest.raises(DataError):
            small_table.partition(["nope"], "tstamp")

    def test_unknown_order_column(self, small_table):
        with pytest.raises(DataError):
            small_table.partition(["ticker"], "nope")

    def test_empty_table_rejected(self):
        with pytest.raises(DataError):
            Table({})

    def test_from_series_round_trip(self, small_table):
        series_list = small_table.partition(["ticker"], "tstamp")
        rebuilt = Table.from_series(series_list, partition_column="sid")
        again = rebuilt.partition(["sid"], "tstamp")
        assert len(again) == 2
        assert [len(s) for s in again] == [30, 30]

    def test_partition_keys_deterministic(self, rng):
        names = np.asarray(list("zyxw") * 5, dtype=object)
        table = Table({"tstamp": np.arange(20.0), "k": names,
                       "val": rng.normal(size=20)})
        keys = [s.key for s in table.partition(["k"], "tstamp")]
        assert keys == sorted(keys)


class TestTimeUnits:
    def test_day_to_hour(self):
        assert to_base_units(2, "DAY", "HOUR") == 48.0

    def test_minute_to_second(self):
        assert to_base_units(5, "MINUTE", "SECOND") == 300.0

    def test_identity(self):
        assert to_base_units(7, "WEEK", "WEEK") == 7.0

    def test_unknown_unit(self):
        with pytest.raises(DataError):
            to_base_units(1, "FORTNIGHT", "DAY")

    def test_unknown_series_unit(self):
        with pytest.raises(DataError):
            to_base_units(1, "DAY", "EON")
