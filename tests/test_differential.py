"""Differential testing: every executor must equal the brute-force matcher.

This is the backbone of the test suite.  A bank of query shapes covering
every operator (Concat/And/Or/Not/Kleene, point and segment variables,
windows, references, indexes) is executed by:

* the T-ReX cost-based engine (sharing auto/on/off),
* T-ReX Batch (probes disabled),
* all rule-based plan families,
* the AFA, Nested-AFA, ZStream and OpenCEP baselines,

and each must produce exactly the brute-force match set.  Series are
randomized (fixed seeds for reproducibility) plus a hypothesis-driven
fuzzing test over short random walks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EXECUTOR_LABELS, make_executor
from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine
from repro.lang.query import compile_query

from tests.conftest import make_series

QUERY_BANK = {
    "v_shape": """
        ORDER BY tstamp
        PATTERN ((DN & W) (UP & W)) & WINDOW
        DEFINE SEGMENT W AS window(2, null),
          SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.8,
          SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.8,
          SEGMENT WINDOW AS window(1, 12)
    """,
    "not": """
        ORDER BY tstamp
        PATTERN RISE & WINDOW & ~(FALL W)
        DEFINE SEGMENT W AS true,
          SEGMENT RISE AS last(RISE.val) / first(RISE.val) > 1.02,
          SEGMENT WINDOW AS window(1, 8),
          SEGMENT FALL AS last(FALL.val) / first(FALL.val) < 0.99
    """,
    "kleene": """
        ORDER BY tstamp
        PATTERN ((UP & W)+) & WINDOW
        DEFINE SEGMENT W AS window(1, 3),
          SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT WINDOW AS window(2, 9)
    """,
    "exact_kleene": """
        ORDER BY tstamp
        PATTERN (((UP & W2) (DN & W2)){2}) & WINDOW
        DEFINE SEGMENT W2 AS window(1, 3),
          SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT DN AS last(DN.val) < first(DN.val),
          SEGMENT WINDOW AS window(2, 14)
    """,
    "or": """
        ORDER BY tstamp
        PATTERN (UP | DN) & WINDOW
        DEFINE SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.9,
          SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.9,
          SEGMENT WINDOW AS window(2, 6)
    """,
    "points_and_gaps": """
        ORDER BY tstamp
        PATTERN ((A1 W (A2 & INC)) & WINDOW)
        DEFINE SEGMENT W AS true,
          A1 AS val < 50, A2 AS val > 50,
          INC AS INC.val > A1.val,
          SEGMENT WINDOW AS window(0, 10)
    """,
    "references": """
        ORDER BY tstamp
        PATTERN (UP GAP (CORR & CW)) & WINDOW
        DEFINE SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.7,
          SEGMENT GAP AS true,
          SEGMENT CW AS window(2, 4),
          SEGMENT CORR AS corr(CORR.val, UP.val) >= 0.9,
          SEGMENT WINDOW AS window(4, 12)
    """,
    "mixed_padding": """
        ORDER BY tstamp
        PATTERN (W1 (DOWN & FALL & W2) W1) & MK & WINDOW
        DEFINE SEGMENT W1 AS true,
          SEGMENT W2 AS window(1, 4),
          SEGMENT FALL AS last(FALL.val) - first(FALL.val) < -1,
          SEGMENT DOWN AS
            linear_reg_r2_signed(DOWN.tstamp, DOWN.val) <= -0.8,
          SEGMENT WINDOW AS window(8, 14),
          SEGMENT MK AS mann_kendall_test(val) >= 0.3
    """,
    "outlier_point": """
        ORDER BY tstamp
        PATTERN (UP1 OUT UP2) & WINDOW
        DEFINE OUT AS zscore_outlier(val, 4) > 1.2,
          SEGMENT UP1 AS linear_reg_r2_signed(UP1.tstamp, UP1.val) >= 0.5,
          SEGMENT UP2 AS linear_reg_r2_signed(UP2.tstamp, UP2.val) >= 0.5,
          SEGMENT WINDOW AS window(2, 10)
    """,
    "point_kleene": """
        ORDER BY tstamp
        PATTERN (A+ B) & WINDOW
        DEFINE A AS val > 50, B AS val < 50,
          SEGMENT WINDOW AS window(0, 6)
    """,
}


def random_series(seed, n=26):
    rng = np.random.default_rng(seed)
    return make_series(np.cumsum(rng.normal(0, 1.2, n)) + 50)


def brute(query, series):
    return sorted(BruteForceMatcher(query).match_series(series))


@pytest.mark.parametrize("name", sorted(QUERY_BANK))
@pytest.mark.parametrize("label", EXECUTOR_LABELS)
def test_executor_agrees_with_bruteforce(name, label):
    query = compile_query(QUERY_BANK[name])
    for seed in (1, 2):
        series = random_series(seed)
        expected = brute(query, series)
        got = make_executor(label, query).match_series(series)
        assert got == expected, (name, label, seed)


@pytest.mark.parametrize("name", sorted(QUERY_BANK))
@pytest.mark.parametrize("planner", ["pr_left", "pr_right", "sm_left",
                                     "sm_right"])
def test_rule_planner_agrees_with_bruteforce(name, planner):
    query = compile_query(QUERY_BANK[name])
    series = random_series(3)
    expected = brute(query, series)
    engine = TRexEngine(optimizer=planner, sharing="on")
    got = engine.execute_query(query, [series]).per_series[0].matches
    assert got == expected, (name, planner)


@pytest.mark.parametrize("name", ["not"])
@pytest.mark.parametrize("planner", ["pr_left_pnot", "pr_right_pnot",
                                     "sm_left_pnot", "sm_right_pnot"])
def test_probenot_planners(name, planner):
    query = compile_query(QUERY_BANK[name])
    series = random_series(4)
    expected = brute(query, series)
    engine = TRexEngine(optimizer=planner, sharing="on")
    got = engine.execute_query(query, [series]).per_series[0].matches
    assert got == expected


@pytest.mark.parametrize("name", sorted(QUERY_BANK))
def test_sharing_modes_agree(name):
    query = compile_query(QUERY_BANK[name])
    series = random_series(5)
    expected = brute(query, series)
    for sharing in ("auto", "on", "off"):
        engine = TRexEngine(optimizer="cost", sharing=sharing)
        got = engine.execute_query(query, [series]).per_series[0].matches
        assert got == expected, (name, sharing)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       name=st.sampled_from(["v_shape", "not", "kleene", "or",
                             "points_and_gaps", "point_kleene"]))
def test_fuzz_cost_planner_vs_bruteforce(seed, name):
    query = compile_query(QUERY_BANK[name])
    series = random_series(seed, n=18)
    expected = brute(query, series)
    engine = TRexEngine(optimizer="cost", sharing="auto")
    got = engine.execute_query(query, [series]).per_series[0].matches
    assert got == expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_afa_vs_bruteforce(seed):
    query = compile_query(QUERY_BANK["mixed_padding"])
    series = random_series(seed, n=16)
    expected = brute(query, series)
    got = make_executor("afa", query).match_series(series)
    assert got == expected
