"""CLI error hygiene: exit codes, one-line stderr, robustness flags.

Run through a real subprocess so the ``TREX_FAULTS`` environment path
and process exit codes are exercised end to end.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

QUERY = ("PARTITION BY ticker ORDER BY tstamp PATTERN (UP) "
         "DEFINE SEGMENT UP AS last(UP.price) > first(UP.price) "
         "AND window(1, 3)")


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "prices.csv"
    path.write_text(
        "tstamp,ticker,price\n"
        "0,ACME,10.0\n"
        "1,ACME,11.5\n"
        "2,ACME,12.0\n"
        "3,ACME,13.0\n"
        "0,OTHR,5.0\n"
        "1,OTHR,6.0\n"
        "2,OTHR,7.5\n")
    return str(path)


@pytest.fixture
def nan_csv_file(tmp_path):
    path = tmp_path / "gappy.csv"
    path.write_text(
        "tstamp,ticker,price\n"
        "0,ACME,10.0\n"
        "1,ACME,\n"
        "2,ACME,12.0\n"
        "3,ACME,13.0\n")
    return str(path)


def run_cli(*args, faults_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop("TREX_FAULTS", None)
    # Fault hit-counts index the serial cross-series firing order;
    # parallel CLI runs are covered by tests/test_parallel_chaos.py.
    env.pop("TREX_EXECUTOR", None)
    if faults_env is not None:
        env["TREX_FAULTS"] = faults_env
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)


def query_args(csv_path, *extra):
    return ["query", "--csv", csv_path, "--query", QUERY, *extra]


class TestExitCodes:
    def test_clean_query_exits_zero(self, csv_file):
        proc = run_cli(*query_args(csv_file))
        assert proc.returncode == 0, proc.stderr
        assert "ACME" in proc.stdout

    def test_syntax_error_exit_3(self, csv_file):
        proc = run_cli("query", "--csv", csv_file, "--query", "PATTERN (((")
        assert proc.returncode == 3

    def test_bind_error_exit_4(self, csv_file):
        proc = run_cli("query", "--csv", csv_file, "--query",
                       "ORDER BY tstamp PATTERN (A) "
                       "DEFINE A AS window(1, 5)")  # row var + window
        assert proc.returncode == 4

    def test_data_error_exit_6(self, nan_csv_file):
        proc = run_cli(*query_args(nan_csv_file, "--nan-policy", "raise"))
        assert proc.returncode == 6
        assert "non-finite" in proc.stderr

    def test_execution_fault_exit_7(self, csv_file):
        proc = run_cli(*query_args(csv_file),
                       faults_env="data.series:raise")
        assert proc.returncode == 7

    def test_timeout_exit_8(self, csv_file):
        proc = run_cli(*query_args(csv_file, "--timeout", "1e-9"))
        assert proc.returncode == 8

    def test_budget_exit_8(self, csv_file):
        proc = run_cli(*query_args(csv_file, "--max-segments", "1"))
        assert proc.returncode == 8
        assert "max_segments" in proc.stderr

    def test_stderr_is_one_line(self, csv_file):
        proc = run_cli(*query_args(csv_file, "--max-segments", "1"))
        lines = [ln for ln in proc.stderr.splitlines() if ln.strip()]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")


class TestDegradationFlags:
    def test_on_error_skip_isolates_fault(self, csv_file):
        proc = run_cli(*query_args(csv_file, "--on-error", "skip"),
                       faults_env="data.series:raise@2")
        assert proc.returncode == 0, proc.stderr
        assert "warning:" in proc.stderr
        assert "ACME" in proc.stdout  # first series survived

    def test_on_error_partial_with_budget(self, csv_file):
        proc = run_cli(*query_args(csv_file, "--on-error", "partial",
                                   "--max-segments", "2"))
        assert proc.returncode == 0, proc.stderr
        assert "partial result" in proc.stderr
        assert "budget" in proc.stderr

    def test_planner_fault_reports_fallback(self, csv_file):
        proc = run_cli(*query_args(csv_file),
                       faults_env="planner.dp:plan")
        assert proc.returncode == 0, proc.stderr
        assert "fallback" in proc.stderr
        assert "pr_left" in proc.stderr
        assert "ACME" in proc.stdout

    def test_nan_policy_omit_masks_rows(self, nan_csv_file):
        proc = run_cli(*query_args(nan_csv_file, "--nan-policy", "omit"))
        assert proc.returncode == 0, proc.stderr

    def test_explain_analyze_shows_fallback(self, csv_file):
        proc = run_cli("explain", "--analyze", "--csv", csv_file,
                       "--query", QUERY, faults_env="planner.dp:plan")
        assert proc.returncode == 0, proc.stderr
        assert "!! planner fallback:" in proc.stdout
