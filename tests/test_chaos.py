"""Chaos suite: fault injection across planner, executor and data layers.

Sweeps every operator family's ``exec.<Op>.eval`` fault point under each
error policy, exercises the planner fallback chain, and checks that
partial results stay deterministic across planners when the *failure
itself* is deterministic (docs/ROBUSTNESS.md).
"""

import pytest

from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine
from repro.errors import QueryTimeout
from repro.lang.query import compile_query
from repro.testing import faults

from tests.conftest import make_series

VEE = [1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5]

#: One query per operator family; each is small enough for the
#: brute-force reference matcher.
FAMILY_QUERIES = {
    "concat": """
        ORDER BY tstamp
        PATTERN (DN UP) & WIN
        DEFINE SEGMENT DN AS last(DN.val) < first(DN.val),
          SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT WIN AS window(2, 6)
    """,
    "and": """
        ORDER BY tstamp
        PATTERN (UP & W) & WIN
        DEFINE SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT W AS window(1, 4),
          SEGMENT WIN AS window(1, 6)
    """,
    "or": """
        ORDER BY tstamp
        PATTERN (UP | DN) & WIN
        DEFINE SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT DN AS last(DN.val) < first(DN.val),
          SEGMENT WIN AS window(2, 4)
    """,
    "not": """
        ORDER BY tstamp
        PATTERN (X & ~(F)) & WIN
        DEFINE SEGMENT X AS last(X.val) > first(X.val),
          SEGMENT F AS last(F.val) < first(F.val),
          SEGMENT WIN AS window(1, 4)
    """,
    "kleene": """
        ORDER BY tstamp
        PATTERN ((R & W)+) & WIN
        DEFINE SEGMENT R AS last(R.val) > first(R.val),
          SEGMENT W AS window(1, 2),
          SEGMENT WIN AS window(1, 6)
    """,
}


@pytest.fixture(autouse=True)
def serial_executor(monkeypatch):
    # Fault hit-counts (``@N``) index the *serial* cross-series firing
    # order; under a parallel executor the order (and, for processes,
    # the counter itself) is per-worker.  Concurrent fault semantics are
    # covered by tests/test_parallel_chaos.py.
    monkeypatch.delenv("TREX_EXECUTOR", raising=False)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def two_series():
    return [make_series(VEE, key=("a",)),
            make_series(list(reversed(VEE)), key=("b",))]


def plan_operator_names(query, series_list):
    """All distinct physical-operator names in the cost-based plan."""
    from repro.plan.logical import build_logical_plan
    engine = TRexEngine()
    plan = engine.build_plan(query, build_logical_plan(query), series_list)
    names = set()
    stack = [plan]
    while stack:
        op = stack.pop()
        names.add(getattr(type(op), "name", None) or type(op).__name__)
        stack.extend(op.children())
    return sorted(names)


class TestOperatorFaultSweep:
    """Inject a fault into every operator of every family's plan."""

    @pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
    def test_each_operator_each_policy(self, family):
        query = compile_query(FAMILY_QUERIES[family])
        series_list = two_series()
        clean = TRexEngine().execute_query(query, series_list)
        op_names = plan_operator_names(query, series_list)
        assert op_names, f"no operators found for family {family}"
        for op_name in op_names:
            point = f"exec.{op_name}.eval"
            # raise policy: the injected fault propagates untouched.
            with faults.inject(point):
                with pytest.raises(faults.InjectedFault):
                    TRexEngine().execute_query(query, series_list)
            # skip policy: both series fail, errors recorded, no matches.
            with faults.inject(point):
                result = TRexEngine(on_error="skip").execute_query(
                    query, series_list)
            assert [e.key for e in result.errors] == [("a",), ("b",)]
            assert all(e.kind == "execution" for e in result.errors)
            assert result.total_matches == 0
            assert not result.interrupted
            # partial policy on the 2nd firing only: series "a" completes
            # clean; "b" keeps a sorted, duplicate-free subset.
            with faults.inject(point, on_hit=2):
                result = TRexEngine(on_error="partial").execute_query(
                    query, series_list)
            clean_a, clean_b = clean.per_series[0], clean.per_series[1]
            got_a, got_b = result.per_series[0], result.per_series[1]
            if got_a.error is None:
                assert got_a.matches == clean_a.matches
                assert got_b.error is not None
            partial = got_b if got_b.error is not None else got_a
            reference = clean_b if got_b.error is not None else clean_a
            assert partial.matches == sorted(set(partial.matches))
            assert set(partial.matches) <= set(reference.matches)

    @pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
    def test_crash_fault_isolated_as_internal(self, family):
        """A non-library RuntimeError inside an operator is still
        isolated per series under skip/partial."""
        query = compile_query(FAMILY_QUERIES[family])
        series_list = two_series()
        op_name = plan_operator_names(query, series_list)[0]
        with faults.inject(f"exec.{op_name}.eval", action="crash"):
            result = TRexEngine(on_error="skip").execute_query(
                query, series_list)
        assert len(result.errors) == 2
        assert all(e.kind == "internal" for e in result.errors)
        assert all(e.error == "RuntimeError" for e in result.errors)


class TestPlannerFallback:
    def query_and_series(self):
        query = compile_query(FAMILY_QUERIES["and"])
        return query, two_series()

    @pytest.mark.parametrize("action", ["plan", "raise", "crash"])
    def test_dp_fault_falls_back_to_rule_plan(self, action):
        query, series_list = self.query_and_series()
        expected = {series.key: sorted(
            BruteForceMatcher(query).match_series(series))
            for series in series_list}
        with faults.inject("planner.dp", action=action):
            result = TRexEngine().execute_query(query, series_list)
        assert result.planner_fallback is not None
        assert "pr_left" in result.planner_fallback
        assert result.metrics_dict()["planner_fallback"] \
            == result.planner_fallback
        for entry in result.per_series:
            assert entry.matches == expected[entry.key]
            assert entry.error is None

    def test_fallback_matches_equal_cost_plan_matches(self):
        query, series_list = self.query_and_series()
        clean = TRexEngine().execute_query(query, series_list)
        with faults.inject("planner.dp"):
            degraded = TRexEngine().execute_query(query, series_list)
        assert degraded.matches_by_key() == clean.matches_by_key()

    def test_fallback_visible_in_explain_analyze(self):
        query, series_list = self.query_and_series()
        with faults.inject("planner.dp"):
            result = TRexEngine(analyze=True).execute_query(
                query, series_list)
        assert result.plan_analyze.startswith("!! planner fallback:")
        assert "pr_left" in result.plan_analyze

    def test_planning_timeout_does_not_fall_back(self):
        """QueryTimeout during planning means the query is out of time —
        no fallback plan could execute anyway."""
        query, series_list = self.query_and_series()
        with faults.inject("planner.dp", action="timeout"):
            with pytest.raises(QueryTimeout):
                TRexEngine().execute_query(query, series_list)

    def test_no_fallback_for_rule_planners(self):
        """planner.dp only guards the cost-based path."""
        query, series_list = self.query_and_series()
        with faults.inject("planner.dp") as spec:
            result = TRexEngine(optimizer="pr_left").execute_query(
                query, series_list)
        assert result.planner_fallback is None
        assert spec.fired == 0
        assert result.total_matches > 0


class TestDataSeriesFaults:
    def test_partial_results_deterministic_across_planners(self):
        """A deterministic mid-query failure (series #2 times out) yields
        identical surviving matches for every planner."""
        query = compile_query(FAMILY_QUERIES["concat"])
        series_list = [make_series(VEE, key=("a",)),
                       make_series(list(reversed(VEE)), key=("b",)),
                       make_series(VEE, key=("c",))]
        clean = TRexEngine().execute_query(query, series_list)
        harvests = {}
        for optimizer in ("cost", "batch", "pr_left"):
            with faults.inject("data.series", action="timeout", on_hit=2):
                result = TRexEngine(optimizer=optimizer,
                                    on_error="partial").execute_query(
                    query, series_list)
            assert result.interrupted
            assert result.degradation.startswith("timeout")
            a, b, c = result.per_series
            assert a.error is None
            assert b.error is not None and b.error.kind == "timeout"
            assert c.matches == []  # global stop after the timeout
            harvests[optimizer] = a.matches
        assert harvests["cost"] == harvests["batch"] == harvests["pr_left"]
        assert harvests["cost"] == clean.per_series[0].matches

    def test_skip_policy_drops_only_failing_series(self):
        query = compile_query(FAMILY_QUERIES["and"])
        series_list = two_series()
        clean = TRexEngine().execute_query(query, series_list)
        with faults.inject("data.series", action="data", on_hit=2):
            result = TRexEngine(on_error="skip").execute_query(
                query, series_list)
        a, b = result.per_series
        assert a.error is None
        assert a.matches == clean.per_series[0].matches
        assert b.error is not None and b.error.kind == "data"
        assert b.matches == []
        assert not result.interrupted  # data faults are not global

    def test_raise_policy_propagates(self):
        query = compile_query(FAMILY_QUERIES["and"])
        with faults.inject("data.series"):
            with pytest.raises(faults.InjectedFault):
                TRexEngine().execute_query(query, two_series())


#: A query whose leaves use shared aggregate indexes under sharing='on'.
INDEXED_QUERY = """
    ORDER BY tstamp
    PATTERN (UP & W) & WIN
    DEFINE SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.5,
      SEGMENT W AS window(2, 4),
      SEGMENT WIN AS window(2, 6)
"""


class TestAggregateLookupFault:
    def test_lookup_hook_fires_and_identity_corrupt_is_transparent(self):
        """The aggregate.lookup point sees every shared-index lookup; an
        identity corruption must not change the result."""
        query = compile_query(INDEXED_QUERY)
        series_list = two_series()
        clean = TRexEngine(sharing="on").execute_query(query, series_list)
        with faults.inject("aggregate.lookup", action="corrupt",
                           corrupt=lambda v: v) as spec:
            result = TRexEngine(sharing="on").execute_query(
                query, series_list)
        assert spec.hits > 0
        assert result.matches_by_key() == clean.matches_by_key()

    def test_corrupted_lookup_isolated_by_policy(self):
        query = compile_query(INDEXED_QUERY)
        series_list = two_series()

        def explode(value):
            raise faults.InjectedFault("corrupted index entry")

        with faults.inject("aggregate.lookup", action="corrupt",
                           corrupt=explode):
            result = TRexEngine(sharing="on", on_error="skip").execute_query(
                query, series_list)
        assert len(result.errors) == 2
        assert all(e.kind == "execution" for e in result.errors)
