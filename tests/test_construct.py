"""Unit tests for the shared plan-construction helpers."""

import pytest

from repro.errors import PlanError
from repro.lang.query import compile_query
from repro.optimizer.construct import (Construction, publish_set,
                                       validate_scoping, var_is_indexable)
from repro.plan.logical import LVar, build_logical_plan, walk


def query_of(text):
    return compile_query(text)


REFS_TEXT = """
ORDER BY tstamp
PATTERN (UP GAP X) & WIN
DEFINE SEGMENT UP AS last(UP.val) > 1,
  SEGMENT GAP AS true,
  SEGMENT X AS corr(X.val, UP.val) > 0.5,
  SEGMENT WIN AS window(0, 20)
"""


class TestPublishSet:
    def test_referenced_and_referencing(self):
        query = query_of(REFS_TEXT)
        published = publish_set(query)
        # UP is referenced; X holds an external reference (lift owner).
        assert published == frozenset({"UP", "X"})

    def test_no_refs_empty(self):
        query = query_of("ORDER BY t\nPATTERN (A)\n"
                         "DEFINE SEGMENT A AS last(A.v) > 1")
        assert publish_set(query) == frozenset()


class TestIndexable:
    def test_indexable_aggregate(self):
        query = query_of(
            "ORDER BY t\nPATTERN (A)\nDEFINE SEGMENT A AS "
            "linear_reg_r2(A.t, A.v) > 0.5")
        assert var_is_indexable(query.var("A"), query)

    def test_plain_condition_not_indexable(self):
        query = query_of("ORDER BY t\nPATTERN (A)\n"
                         "DEFINE SEGMENT A AS last(A.v) > 1")
        assert not var_is_indexable(query.var("A"), query)

    def test_cross_segment_aggregate_not_indexable(self):
        query = query_of(REFS_TEXT)
        assert not var_is_indexable(query.var("X"), query)

    def test_context_aggregate_not_indexable(self):
        query = query_of("ORDER BY t\nPATTERN (A)\n"
                         "DEFINE A AS zscore_outlier(v, 5) > 2")
        assert not var_is_indexable(query.var("A"), query)


class TestOrderForProbes:
    def test_provider_before_consumer(self):
        query = query_of(REFS_TEXT)
        plan = build_logical_plan(query)
        # The top-level And's children: the concat (providing UP, X) and
        # nothing else after window embedding; dig into the concat parts.
        from repro.plan.logical import LConcat
        concat = next(n for n in walk(plan) if isinstance(n, LConcat))
        order, acyclic = Construction.order_for_probes(concat.parts,
                                                       frozenset())
        assert acyclic
        names = []
        for index in order:
            part = concat.parts[index]
            names.extend(n.var.name for n in walk(part)
                         if isinstance(n, LVar))
        assert names.index("UP") < names.index("X")

    def test_cycle_reported(self):
        text = """
        ORDER BY tstamp
        PATTERN (A & B) & WIN
        DEFINE SEGMENT A AS corr(A.val, B.val) > 0.1,
          SEGMENT B AS corr(B.val, A.val) > 0.1,
          SEGMENT WIN AS window(1, 5)
        """
        query = query_of(text)
        plan = build_logical_plan(query)
        from repro.plan.logical import LAnd
        and_node = next(n for n in walk(plan) if isinstance(n, LAnd))
        order, acyclic = Construction.order_for_probes(and_node.parts,
                                                       frozenset())
        assert not acyclic
        assert order == list(range(len(and_node.parts)))

    def test_cyclic_refs_still_executable_via_lifting(self):
        """Mutually referencing siblings lift into a Filter and run."""
        import numpy as np
        from repro.core.engine import TRexEngine
        from tests.conftest import make_series
        text = """
        ORDER BY tstamp
        PATTERN (A & B) & WIN
        DEFINE SEGMENT A AS corr(A.val, B.val) > -2,
          SEGMENT B AS corr(B.val, A.val) > -2,
          SEGMENT WIN AS window(1, 4)
        """
        query = query_of(text)
        series = make_series(np.arange(10.0))
        result = TRexEngine(optimizer="sm_left").execute_query(query,
                                                               [series])
        # corr(X, X) of identical segments is trivially above -2: every
        # windowed segment matches.
        assert result.total_matches > 0


class TestScopingValidation:
    def test_reference_into_not_rejected(self):
        text = """
        ORDER BY tstamp
        PATTERN (X & ~(F W)) & WIN
        DEFINE SEGMENT X AS corr(X.val, F.val) > 0.5,
          SEGMENT F AS last(F.val) < first(F.val),
          SEGMENT W AS true,
          SEGMENT WIN AS window(1, 5)
        """
        query = query_of(text)
        plan = build_logical_plan(query)
        with pytest.raises(PlanError):
            validate_scoping(query, plan)

    def test_clean_query_passes(self):
        query = query_of(REFS_TEXT)
        validate_scoping(query, build_logical_plan(query))


class TestConstructionLeaves:
    def test_repeated_vars_detected(self):
        query = query_of(
            "ORDER BY t\nPATTERN (W A W) & WIN\n"
            "DEFINE SEGMENT W AS true, SEGMENT A AS last(A.v) > 1,\n"
            "SEGMENT WIN AS window(1, 6)")
        construction = Construction(query)
        assert "W" in construction._repeated_vars
        assert "A" not in construction._repeated_vars

    def test_invalid_sharing_mode(self):
        query = query_of("ORDER BY t\nPATTERN (A)\nDEFINE A AS v > 1")
        with pytest.raises(PlanError):
            Construction(query, sharing="auto")
