"""Non-finite data policy: Series/Table/loader ``nan_policy`` threading."""

import numpy as np
import pytest

from repro.datasets.loader import load_csv
from repro.errors import DataError
from repro.timeseries.series import Series
from repro.timeseries.table import Table


def gappy_columns():
    return {
        "tstamp": np.arange(6.0),
        "val": np.asarray([1.0, np.nan, 3.0, np.inf, 5.0, 6.0]),
        "vol": np.asarray([10.0, 20.0, 30.0, 40.0, np.nan, 60.0]),
    }


class TestSeriesPolicy:
    def test_allow_keeps_non_finite(self):
        series = Series(gappy_columns(), "tstamp")
        assert len(series) == 6
        assert np.isnan(series.column("val")[1])

    def test_raise_names_column_and_row(self):
        with pytest.raises(DataError, match=r"'val'.*row 1"):
            Series(gappy_columns(), "tstamp", nan_policy="raise")

    def test_omit_masks_rows_across_all_columns(self):
        series = Series(gappy_columns(), "tstamp", nan_policy="omit")
        # rows 1 (nan val), 3 (inf val) and 4 (nan vol) are dropped.
        assert series.column("tstamp").tolist() == [0.0, 2.0, 5.0]
        assert series.column("val").tolist() == [1.0, 3.0, 6.0]
        assert np.isfinite(series.column("vol")).all()

    def test_omit_leaves_clean_series_untouched(self):
        series = Series({"tstamp": np.arange(3.0),
                         "val": np.asarray([1.0, 2.0, 3.0])},
                        "tstamp", nan_policy="omit")
        assert len(series) == 3

    def test_object_columns_ignored_by_policy(self):
        columns = {"tstamp": np.arange(3.0),
                   "ticker": np.asarray(["A", "B", "C"], dtype=object),
                   "val": np.asarray([1.0, np.nan, 3.0])}
        series = Series(columns, "tstamp", nan_policy="omit")
        assert series.column("ticker").tolist() == ["A", "C"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(DataError, match="nan_policy"):
            Series(gappy_columns(), "tstamp", nan_policy="drop")


class TestTablePolicy:
    def test_partition_threads_policy(self):
        table = Table(gappy_columns(), nan_policy="omit")
        (series,) = table.partition(None, "tstamp")
        assert len(series) == 3

    def test_partition_by_key_threads_policy(self):
        columns = {"tstamp": np.asarray([0.0, 1.0, 0.0, 1.0]),
                   "ticker": np.asarray(["A", "A", "B", "B"], dtype=object),
                   "val": np.asarray([1.0, np.nan, 3.0, 4.0])}
        table = Table(columns, nan_policy="omit")
        by_key = {s.key: s for s in table.partition(["ticker"], "tstamp")}
        assert len(by_key[("A",)]) == 1
        assert len(by_key[("B",)]) == 2

    def test_raise_policy_surfaces_at_partition_time(self):
        table = Table(gappy_columns(), nan_policy="raise")
        with pytest.raises(DataError, match="non-finite"):
            table.partition(None, "tstamp")

    def test_unknown_policy_rejected(self):
        with pytest.raises(DataError, match="nan_policy"):
            Table(gappy_columns(), nan_policy="skip")


class TestLoaderPolicy:
    @pytest.fixture
    def nan_csv(self, tmp_path):
        path = tmp_path / "gappy.csv"
        path.write_text("tstamp,val\n0,1.0\n1,\n2,3.0\n")
        return str(path)

    def test_default_allows_nan(self, nan_csv):
        table = load_csv(nan_csv)
        (series,) = table.partition(None, "tstamp")
        assert len(series) == 3
        assert np.isnan(series.column("val")[1])

    def test_omit_threaded_through(self, nan_csv):
        table = load_csv(nan_csv, nan_policy="omit")
        (series,) = table.partition(None, "tstamp")
        assert series.column("val").tolist() == [1.0, 3.0]

    def test_raise_threaded_through(self, nan_csv):
        table = load_csv(nan_csv, nan_policy="raise")
        with pytest.raises(DataError, match="nan_policy"):
            table.partition(None, "tstamp")
