"""Partial results, resource budgets and deadline semantics.

The ``'partial'`` policy guarantee under test: whatever stops a series
early (operator fault, blown segment budget, timeout), the surviving
matches are a sorted, duplicate-free subset of the uninterrupted run's
matches, and completed series are untouched (docs/ROBUSTNESS.md).
"""

import time

import pytest

from repro.core.engine import TRexEngine
from repro.errors import (PlanningBudgetExceeded, QueryTimeout,
                          ResourceBudgetExceeded, error_kind, exit_code)
from repro.lang.query import compile_query
from repro.testing import faults

from tests.conftest import make_series
from tests.test_chaos import FAMILY_QUERIES, VEE, two_series


@pytest.fixture(autouse=True)
def serial_executor(monkeypatch):
    # Fault hit-counts (``@N``) index the *serial* cross-series firing
    # order; under a parallel executor the order (and, for processes,
    # the counter itself) is per-worker.  Concurrent fault semantics are
    # covered by tests/test_parallel_chaos.py.
    monkeypatch.delenv("TREX_EXECUTOR", raising=False)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def assert_partial_subset(partial, reference):
    assert partial == sorted(set(partial))
    assert set(partial) <= set(reference)


class TestSegmentBudget:
    @pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
    def test_partial_policy_keeps_prefix_subset(self, family):
        query = compile_query(FAMILY_QUERIES[family])
        series_list = two_series()
        clean = TRexEngine().execute_query(query, series_list)
        assert clean.total_matches > 1, "query too selective for this test"
        result = TRexEngine(on_error="partial", max_segments=2) \
            .execute_query(query, series_list)
        assert result.interrupted
        assert result.degradation.startswith("budget")
        assert result.total_matches < clean.total_matches
        for got, ref in zip(result.per_series, clean.per_series):
            assert_partial_subset(got.matches, ref.matches)

    @pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
    def test_raise_policy_propagates_budget_error(self, family):
        query = compile_query(FAMILY_QUERIES[family])
        with pytest.raises(ResourceBudgetExceeded, match="max_segments"):
            TRexEngine(max_segments=1).execute_query(query, two_series())

    def test_skip_policy_drops_matches_but_records_budget_error(self):
        query = compile_query(FAMILY_QUERIES["concat"])
        result = TRexEngine(on_error="skip", max_segments=2) \
            .execute_query(query, two_series())
        assert result.interrupted
        errors = result.errors
        assert errors and errors[0].kind == "budget"
        assert errors[0].partial is False
        failing = result.per_series[0]
        assert failing.error is not None and failing.matches == []

    def test_budget_spans_series(self):
        """max_segments is a query-global budget, not per series: what
        series #1 consumes is gone for series #2."""
        query = compile_query(FAMILY_QUERIES["and"])
        series_list = two_series()
        clean = TRexEngine().execute_query(query, series_list)
        first = len(clean.per_series[0].matches)
        assert first > 0 and len(clean.per_series[1].matches) > 0
        result = TRexEngine(on_error="partial", max_segments=first) \
            .execute_query(query, series_list)
        assert result.per_series[0].matches == clean.per_series[0].matches
        assert len(result.per_series[1].matches) \
            < len(clean.per_series[1].matches)
        assert result.interrupted

    def test_generous_budget_changes_nothing(self):
        query = compile_query(FAMILY_QUERIES["kleene"])
        series_list = two_series()
        clean = TRexEngine().execute_query(query, series_list)
        result = TRexEngine(on_error="partial", max_segments=10 ** 6) \
            .execute_query(query, series_list)
        assert not result.interrupted
        assert result.matches_by_key() == clean.matches_by_key()

    def test_error_taxonomy(self):
        assert error_kind(ResourceBudgetExceeded("x")) == "budget"
        assert exit_code(ResourceBudgetExceeded("x")) == 8
        assert exit_code(QueryTimeout("x")) == 8

    def test_invalid_budget_rejected(self):
        from repro.errors import PlanError
        with pytest.raises(PlanError):
            TRexEngine(max_segments=0)


#: Enough variables to make DP planning non-trivial (regression: the
#: query deadline must start before planning and tick inside the DP).
MANY_VARS = """
    ORDER BY tstamp
    PATTERN (A B C D E F) & WIN
    DEFINE SEGMENT A AS last(A.val) > first(A.val),
      SEGMENT B AS last(B.val) < first(B.val),
      SEGMENT C AS last(C.val) > first(C.val),
      SEGMENT D AS last(D.val) < first(D.val),
      SEGMENT E AS last(E.val) > first(E.val),
      SEGMENT F AS avg(F.val) > 0,
      SEGMENT WIN AS window(6, 40)
"""


def long_series(n=400):
    return [make_series((VEE * 40)[:n], key=("long",))]


class TestDeadlineCoversPlanning:
    def test_tiny_timeout_raises_during_planning(self):
        """Regression: a deadline far smaller than planning time must
        surface promptly as QueryTimeout, not after planning finishes."""
        engine = TRexEngine(timeout_seconds=1e-7)
        t0 = time.perf_counter()
        with pytest.raises(QueryTimeout):
            engine.execute_query(compile_query(MANY_VARS), long_series())
        assert time.perf_counter() - t0 < 5.0

    def test_tiny_timeout_degrades_under_partial(self):
        engine = TRexEngine(timeout_seconds=1e-7, on_error="partial")
        result = engine.execute_query(compile_query(MANY_VARS),
                                      long_series())
        assert result.interrupted
        assert result.degradation.startswith("timeout")
        assert result.total_matches == 0
        assert len(result.per_series) == 1  # shape preserved

    def test_planning_budget_triggers_fallback_not_failure(self):
        """A blown *planning* budget is recoverable: the rule-based
        fallback plan still answers the query."""
        engine = TRexEngine(planning_timeout_seconds=1e-9)
        query = compile_query(FAMILY_QUERIES["and"])
        series_list = two_series()
        result = engine.execute_query(query, series_list)
        assert result.planner_fallback is not None
        assert "pr_left" in result.planner_fallback
        clean = TRexEngine().execute_query(query, series_list)
        assert result.matches_by_key() == clean.matches_by_key()

    def test_planning_budget_error_is_plan_kind(self):
        assert error_kind(PlanningBudgetExceeded("x")) == "plan"
        assert exit_code(PlanningBudgetExceeded("x")) == 5

    def test_generous_timeout_changes_nothing(self):
        query = compile_query(FAMILY_QUERIES["or"])
        series_list = two_series()
        clean = TRexEngine().execute_query(query, series_list)
        result = TRexEngine(timeout_seconds=3600.0).execute_query(
            query, series_list)
        assert not result.interrupted
        assert result.matches_by_key() == clean.matches_by_key()


class TestResultSurface:
    def test_default_policy_result_shape_unchanged(self):
        """on_error='raise' keeps the result surface byte-identical to
        the pre-policy engine for clean runs."""
        query = compile_query(FAMILY_QUERIES["and"])
        result = TRexEngine().execute_query(query, two_series())
        assert result.interrupted is False
        assert result.degradation is None
        assert result.planner_fallback is None
        assert result.errors == []
        metrics = result.metrics_dict()
        assert metrics["interrupted"] is False
        assert "degradation" not in metrics
        assert "errors" not in metrics

    def test_series_error_in_metrics_and_summary(self):
        query = compile_query(FAMILY_QUERIES["and"])
        with faults.inject("data.series", action="data", on_hit=2):
            result = TRexEngine(on_error="skip").execute_query(
                query, two_series())
        metrics = result.metrics_dict()
        assert len(metrics["errors"]) == 1
        entry = metrics["errors"][0]
        assert entry["kind"] == "data" and entry["error"] == "DataError"
        assert "1 series error(s)" in result.summary()

    def test_interrupted_summary_mentions_reason(self):
        query = compile_query(FAMILY_QUERIES["and"])
        result = TRexEngine(on_error="partial", max_segments=1) \
            .execute_query(query, two_series())
        assert "interrupted" in result.summary()
