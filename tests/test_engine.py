"""Engine API tests: tables, partitions, results, stats."""

import numpy as np
import pytest

from repro import TRexEngine, Table, find_matches
from repro.core.result import QueryResult, SeriesMatches
from repro.lang.query import compile_query

from tests.conftest import make_series

QUERY = """
PARTITION BY ticker
ORDER BY tstamp
PATTERN (UP & W) & WINDOW
DEFINE SEGMENT W AS window(2, null),
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.price) >= 0.8,
  SEGMENT WINDOW AS window(1, 10)
"""


class TestExecute:
    def test_find_matches_end_to_end(self, small_table):
        result = find_matches(small_table, QUERY)
        assert len(result.per_series) == 2
        assert result.plan_explain
        assert result.execution_seconds >= 0

    def test_partitions_are_independent(self, small_table):
        result = find_matches(small_table, QUERY)
        by_key = result.matches_by_key()
        assert set(by_key) == {("A",), ("B",)}

    def test_params_threaded(self, small_table):
        text = QUERY.replace("0.8", ":fit")
        strict = find_matches(small_table, text, params={"fit": 0.99})
        loose = find_matches(small_table, text, params={"fit": 0.5})
        assert strict.total_matches <= loose.total_matches

    def test_series_list_input(self):
        query = compile_query("ORDER BY tstamp\nPATTERN (A)\n"
                              "DEFINE A AS val > 1")
        series = make_series([0, 2, 0, 3])
        engine = TRexEngine()
        result = engine.execute_query(query, [series])
        assert result.per_series[0].matches == [(1, 1), (3, 3)]

    def test_empty_series_handled(self):
        query = compile_query("ORDER BY tstamp\nPATTERN (A)\n"
                              "DEFINE A AS val > 1")
        table = Table({"tstamp": np.asarray([], dtype=np.float64),
                       "val": np.asarray([], dtype=np.float64)})
        result = TRexEngine().execute_query(query, table)
        assert result.total_matches == 0

    def test_single_point_series(self):
        query = compile_query("ORDER BY tstamp\nPATTERN (A)\n"
                              "DEFINE A AS val > 1")
        result = TRexEngine().execute_query(query, [make_series([5])])
        assert result.per_series[0].matches == [(0, 0)]

    def test_stats_populated(self, small_table):
        result = find_matches(small_table, QUERY)
        assert result.stats.get("segments_emitted", 0) > 0

    def test_stats_attributed_per_series(self, small_table):
        """Each series carries its own counters and wall time; the flat
        ``result.stats`` view folds them (backward compatibility)."""
        from collections import Counter
        result = find_matches(small_table, QUERY)
        folded = Counter()
        for entry in result.per_series:
            assert entry.stats.get("segments_emitted", 0) > 0
            assert entry.seconds >= 0.0
            folded.update(entry.stats)
        assert result.stats == folded
        assert result.execution_seconds == pytest.approx(
            sum(entry.seconds for entry in result.per_series), rel=0.1)

    def test_matches_sorted_unique(self, small_table):
        result = find_matches(small_table, QUERY)
        for entry in result.per_series:
            assert entry.matches == sorted(set(entry.matches))


class TestResultType:
    def test_summary(self):
        result = QueryResult(per_series=[SeriesMatches(("x",), [(0, 1)])],
                             planning_seconds=0.5, execution_seconds=1.0)
        assert "1 matches" in result.summary()
        assert result.total_seconds == 1.5

    def test_all_matches_flat(self):
        result = QueryResult(per_series=[
            SeriesMatches(("x",), [(0, 1), (2, 3)]),
            SeriesMatches(("y",), [(5, 6)]),
        ])
        assert result.all_matches() == [
            (("x",), 0, 1), (("x",), 2, 3), (("y",), 5, 6)]

    def test_len(self):
        assert len(SeriesMatches(("x",), [(0, 1)])) == 1
