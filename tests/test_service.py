"""The multi-tenant query service: units + end-to-end over real HTTP.

Unit tests drive the admission/retry/breaker primitives with fake
clocks; the end-to-end tests run a real :class:`BackgroundService` on a
loopback port and speak HTTP to it, so framing, routing, admission,
queueing, execution and drain are all exercised together.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import TRexEngine
from repro.datasets import load
from repro.errors import AdmissionRejected, ServiceError, exit_code
from repro.queries import get_template
from repro.service import (AdmissionController, BackgroundService,
                           BreakerConfig, CircuitBreaker, LoadgenConfig,
                           RetryConfig, RetryPolicy, ServiceConfig,
                           TenantConfig, TokenBucket, check_report,
                           run_load)
from repro.service.retry import transient_series_errors


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_reject(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.try_acquire()
        assert not ok
        assert retry_after == pytest.approx(1.0)

    def test_refill_is_lazy_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        clock.advance(0.5)  # one token back at 2/s
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(100.0)  # refill caps at burst
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejection_does_not_consume(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.try_acquire()[0]
        for _ in range(5):
            bucket.try_acquire()
        clock.advance(1.0)
        assert bucket.try_acquire()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


# ---------------------------------------------------------------------------
# Admission controller
# ---------------------------------------------------------------------------

def _controller(clock, **tenant_kwargs) -> AdmissionController:
    config = ServiceConfig(
        default_tenant=TenantConfig(**tenant_kwargs))
    return AdmissionController(config, clock=clock)


class TestAdmission:
    def test_rate_rejection_carries_retry_after(self):
        clock = FakeClock()
        controller = _controller(clock, rate=1.0, burst=1)
        controller.admit("t").release()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit("t")
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after > 0
        assert exit_code(excinfo.value) == 11

    def test_concurrency_quota_and_release(self):
        clock = FakeClock()
        controller = _controller(clock, rate=1000.0, burst=1000,
                                 max_concurrent=2)
        first = controller.admit("t")
        controller.admit("t")
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit("t")
        assert excinfo.value.reason == "concurrency"
        first.release()
        first.release()  # idempotent
        controller.admit("t")  # slot freed exactly once

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        controller = _controller(clock, rate=1.0, burst=1)
        controller.admit("a").release()
        controller.admit("b").release()  # b has its own bucket
        snapshot = controller.snapshot()
        assert snapshot["a"]["admitted"] == 1
        assert snapshot["b"]["admitted"] == 1

    def test_ticket_as_context_manager(self):
        clock = FakeClock()
        controller = _controller(clock, max_concurrent=1)
        with controller.admit("t"):
            pass
        with controller.admit("t"):
            pass


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        policy = RetryPolicy(RetryConfig(max_attempts=4,
                                         base_delay_seconds=0.1,
                                         max_delay_seconds=0.3,
                                         jitter_ratio=0.25, seed=1))
        first = policy.delays(request_id=7)
        assert first == policy.delays(request_id=7)
        assert len(first) == 3
        for index, delay in enumerate(first):
            base = min(0.3, 0.1 * 2 ** index)
            assert base * 0.75 <= delay <= base * 1.25

    def test_distinct_requests_decorrelate(self):
        policy = RetryPolicy(RetryConfig(max_attempts=3))
        assert policy.delays(1) != policy.delays(2)

    def test_single_attempt_means_no_delays(self):
        policy = RetryPolicy(RetryConfig(max_attempts=1))
        assert policy.delays(1) == []


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, window=10.0, cooldown=5.0):
        return CircuitBreaker(
            BreakerConfig(fallback_threshold=threshold,
                          window_seconds=window,
                          cooldown_seconds=cooldown),
            fallback_planner="pr_left", clock=clock)

    def test_trips_after_clustered_fallbacks(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_fallback()
        assert breaker.state == "closed"
        breaker.record_fallback()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert breaker.planner_override() == "pr_left"

    def test_window_expiry_prevents_trip(self):
        clock = FakeClock()
        breaker = self._breaker(clock, threshold=2, window=1.0)
        breaker.record_fallback()
        clock.advance(2.0)  # first fallback ages out of the window
        breaker.record_fallback()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self._breaker(clock, threshold=1, cooldown=5.0)
        breaker.record_fallback()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "half-open"
        # Exactly one probe gets the cost planner; others stay on rules.
        assert breaker.planner_override() is None
        assert breaker.planner_override() == "pr_left"
        breaker.record_success(used_cost_planner=True)
        assert breaker.state == "closed"

    def test_half_open_reopens_on_fallback(self):
        clock = FakeClock()
        breaker = self._breaker(clock, threshold=1, cooldown=1.0)
        breaker.record_fallback()
        clock.advance(1.0)
        assert breaker.planner_override() is None  # probe
        breaker.record_fallback()
        assert breaker.state == "open"
        assert breaker.trips == 2


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------

class TestServiceConfig:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"queue_depth": 0},
        {"default_timeout_seconds": 0},
        {"default_on_error": "explode"},
        {"executor": "quantum"},
        {"default_tenant": TenantConfig(rate=-1)},
        {"retry": RetryConfig(max_attempts=0)},
        {"breaker": BreakerConfig(fallback_threshold=0)},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs).validate()

    def test_unknown_tenant_gets_default(self):
        config = ServiceConfig(
            tenants={"vip": TenantConfig(rate=999.0)})
        assert config.tenant("vip").rate == 999.0
        assert config.tenant("anon").rate == config.default_tenant.rate


# ---------------------------------------------------------------------------
# End-to-end over real HTTP
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service():
    config = ServiceConfig(port=0, datasets=(("sp500", 3, 80),),
                           workers=2, queue_depth=8)
    with BackgroundService(config) as live:
        yield live


@pytest.fixture(scope="module")
def client(service):
    return service.client()


class TestServiceEndToEnd:
    def test_health_and_ready(self, client):
        status, body = client.get("/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = client.get("/readyz")
        assert status == 200 and body["ready"] is True

    def test_unknown_route_is_404(self, client):
        status, body = client.get("/nope")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_query_matches_direct_engine(self, client):
        template = get_template("v_shape")
        params = template.param_sets()[0]
        status, body = client.post("/query", {"template": "v_shape",
                                              "params": params})
        assert status == 200
        table = load("sp500", num_series=3, length=80)
        query = template.compile(params)
        engine = TRexEngine(optimizer="cost", on_error="partial")
        expected = engine.execute_query(
            query, table.partition(query.partition_by, query.order_by))
        served = {key: [tuple(span) for span in spans]
                  for key, spans in body["matches"].items()}
        direct = {"/".join(str(part) for part in entry.key) or "-":
                  list(entry.matches)
                  for entry in expected.per_series}
        assert served == direct
        assert body["total_matches"] == expected.total_matches

    def test_plan_cache_shared_across_requests(self, client):
        payload = {"template": "head_shldr"}
        status, first = client.post("/query", payload)
        assert status == 200
        status, second = client.post("/query", payload)
        assert status == 200
        assert second["plan_cache"]["plan"] == "hit"
        status, stats = client.get("/stats")
        assert stats["plan_cache"]["plan_hits"] >= 1
        assert stats["plan_cache"]["compile_hits"] >= 1

    def test_malformed_json_is_structured_400(self, client):
        import socket as socketlib
        host, port = client.host, client.port
        raw = (b"POST /query HTTP/1.1\r\nHost: x\r\n"
               b"Content-Length: 9\r\nConnection: close\r\n\r\nnot json!")
        with socketlib.create_connection((host, port), timeout=10) as sock:
            sock.sendall(raw)
            data = sock.recv(65536)
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b"HttpProtocolError" in data

    def test_unknown_dataset_is_structured_400(self, client):
        status, body = client.post(
            "/query", {"dataset": "missing", "query": "x"})
        assert status == 400
        assert body["error"]["kind"] == "service"
        assert body["error"]["exit_code"] == 13

    def test_bad_query_is_bind_error(self, client):
        status, body = client.post(
            "/query", {"dataset": "sp500", "template": "v_shape",
                       "params": {"down_r2_max": "oops"}})
        assert status in (400, 422)
        assert body["error"]["kind"] in ("bind", "plan")

    def test_stats_counters_balance(self, client):
        status, stats = client.get("/stats")
        assert status == 200
        counters = stats["service"]["counters"]
        settled = counters.get("completed", 0) + counters.get("failed", 0)
        assert counters["requests"] == settled
        assert stats["breaker"]["state"] == "closed"

    def test_request_knob_validation(self, client):
        for payload in ({"template": "v_shape", "timeout_seconds": -1},
                        {"template": "v_shape", "on_error": "explode"},
                        {"template": "v_shape", "limit": 0},
                        {"template": "v_shape", "params": [1, 2]}):
            status, body = client.post("/query", payload)
            assert status == 400
            assert body["error"]["kind"] == "service"


class TestAdmissionOverHttp:
    def test_rate_limit_yields_429_with_retry_after(self):
        config = ServiceConfig(
            port=0, datasets=(("sp500", 2, 40),),
            default_tenant=TenantConfig(rate=0.001, burst=1))
        with BackgroundService(config) as live:
            client = live.client()
            status, _, _ = client.request(
                "POST", "/query", {"template": "v_shape"})
            assert status == 200
            status, body, headers = client.request(
                "POST", "/query", {"template": "v_shape"})
            assert status == 429
            assert body["error"]["type"] == "AdmissionRejected"
            assert body["error"]["exit_code"] == 11
            assert float(headers["retry-after"]) > 0
            stats = live.service.stats()
            assert stats["tenants"]["default"]["rejected_rate"] == 1

    def test_concurrency_quota_over_http(self):
        config = ServiceConfig(
            port=0, datasets=(("sp500", 2, 40),), workers=1,
            default_tenant=TenantConfig(rate=1000.0, burst=1000,
                                        max_concurrent=1))
        with BackgroundService(config) as live:
            client = live.client()
            results = []

            def one():
                results.append(client.post(
                    "/query", {"template": "v_shape"})[0])

            threads = [threading.Thread(target=one) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert 200 in results
            assert 429 in results  # the quota held under contention


class TestLoadShedding:
    def test_full_queue_sheds_with_503(self):
        # One worker, a one-slot queue and slow-ish queries: a burst
        # must shed deterministically rather than queue without bound.
        config = ServiceConfig(port=0, datasets=(("sp500", 3, 120),),
                               workers=1, queue_depth=1)
        with BackgroundService(config) as live:
            client = live.client()
            statuses = []

            def one():
                statuses.append(client.post(
                    "/query", {"template": "v_shape"})[0])

            threads = [threading.Thread(target=one) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert 200 in statuses
            assert 503 in statuses
            stats = live.service.stats()
            counters = stats["service"]["counters"]
            shed = counters.get("shed_queue_full", 0) + \
                counters.get("shed_deadline", 0)
            assert shed >= 1
            assert stats["service"]["shed_rate"] > 0


class TestGracefulDrain:
    def test_drain_settles_all_admitted_queries(self):
        config = ServiceConfig(port=0, datasets=(("sp500", 3, 100),),
                               workers=2, queue_depth=16)
        live = BackgroundService(config).start()
        client = live.client()
        statuses = []

        def one():
            statuses.append(client.post(
                "/query", {"template": "v_shape"})[0])

        threads = [threading.Thread(target=one) for _ in range(6)]
        for thread in threads:
            thread.start()
        live.stop()  # drain races the in-flight queries
        for thread in threads:
            thread.join()
        # Every request either settled with a real response (admitted
        # work is never dropped) or was rejected *before* admission
        # with a structured 503 — drain loses nothing it accepted.
        assert statuses and all(code in (200, 503) for code in statuses)
        counters = live.service.stats()["service"]["counters"]
        admitted = counters.get("admitted", 0)
        assert counters.get("completed", 0) >= admitted - \
            counters.get("failed", 0)
        assert counters["requests"] == counters.get("completed", 0) + \
            counters.get("failed", 0)

    def test_readyz_flips_during_drain(self):
        config = ServiceConfig(port=0, datasets=(("sp500", 2, 40),))
        live = BackgroundService(config).start()
        client = live.client()
        assert client.get("/readyz")[0] == 200
        live.stop()
        assert live.service.draining


class TestLoadgen:
    def test_clean_burst_report(self):
        config = ServiceConfig(port=0, datasets=(("sp500", 2, 60),),
                               workers=2)
        with BackgroundService(config) as live:
            host, port = live.address
            report = run_load(LoadgenConfig(
                host=host, port=port, clients=4, requests_per_client=2,
                templates=("v_shape",), seed=3))
        assert report.requests == 8
        assert report.ok == 8
        assert report.unstructured_errors == 0
        assert report.latency["p50_seconds"] > 0
        assert check_report(report) == []

    def test_check_flags_unstructured(self):
        from repro.service.loadgen import LoadReport
        bad = LoadReport(config={}, requests=4, ok=3,
                         errors_by_family={"ok": 3, "unstructured": 1},
                         unstructured_errors=1, shed=0, shed_rate=0.0,
                         retried_requests=0, total_attempts=4,
                         latency={}, wall_seconds=1.0,
                         throughput_rps=4.0)
        problems = check_report(bad)
        assert any("non-structured" in p for p in problems)


def test_transient_series_error_detection():
    from repro.core.result import QueryResult, SeriesError, SeriesMatches
    result = QueryResult()
    result.per_series.append(SeriesMatches(("a",), []))
    result.per_series.append(SeriesMatches(
        ("b",), [], error=SeriesError(
            key=("b",), error="WorkerCrashed", message="pool died",
            kind="execution")))
    assert transient_series_errors(result) == ["pool died"]
