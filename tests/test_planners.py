"""Planner tests: rule strategies, cost-based DP, cost-model components."""

import math

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.errors import PlanError
from repro.exec.concat import SortMergeConcat
from repro.exec.filter_op import FilterOp
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.lang.query import compile_query
from repro.optimizer import costmodel as CM
from repro.optimizer.cost_params import (CostParams, DEFAULT_COST_PARAMS,
                                         expected_distinct, shape_value)
from repro.optimizer.planner import CostBasedPlanner
from repro.optimizer.rulebased import (BASELINE_STRATEGIES,
                                       BASELINE_STRATEGIES_WITH_NOT,
                                       RuleBasedPlanner, RuleStrategy)
from repro.plan.logical import build_logical_plan

from tests.conftest import make_series


def walk_ops(op):
    yield op
    for child in op.children():
        yield from walk_ops(child)


def names_of(plan):
    return [type(node).__name__ for node in walk_ops(plan)]


SIMPLE = """
ORDER BY tstamp
PATTERN ((DN & W) (UP & W)) & WINDOW
DEFINE SEGMENT W AS window(2, null),
  SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.8,
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.8,
  SEGMENT WINDOW AS window(1, 12)
"""

NOT_QUERY = """
ORDER BY tstamp
PATTERN RISE & WINDOW & ~(FALL W)
DEFINE SEGMENT W AS true,
  SEGMENT RISE AS last(RISE.val) / first(RISE.val) > 1.02,
  SEGMENT WINDOW AS window(1, 8),
  SEGMENT FALL AS last(FALL.val) / first(FALL.val) < 0.99
"""

REFS_QUERY = """
ORDER BY tstamp
PATTERN (UP GAP X) & WINDOW
DEFINE SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.7,
  SEGMENT GAP AS true,
  SEGMENT X AS corr(X.val, UP.val) >= 0.9 AND window(2, 4),
  SEGMENT WINDOW AS window(4, 12)
"""


class TestRuleStrategies:
    def test_labels(self):
        labels = [s.label for s in BASELINE_STRATEGIES]
        assert labels == ["pr_left", "pr_right", "sm_left", "sm_right"]
        assert BASELINE_STRATEGIES_WITH_NOT[-1].label == "sm_right_pnot"

    def test_probe_left_uses_right_probe(self):
        query = compile_query(SIMPLE)
        plan = RuleBasedPlanner(RuleStrategy("left", "probe")).plan(query)
        assert "RightProbeConcat" in names_of(plan)

    def test_probe_right_uses_left_probe(self):
        query = compile_query(SIMPLE)
        plan = RuleBasedPlanner(RuleStrategy("right", "probe")).plan(query)
        assert "LeftProbeConcat" in names_of(plan)

    def test_sm_uses_sort_merge(self):
        query = compile_query(SIMPLE)
        plan = RuleBasedPlanner(RuleStrategy("left", "sm")).plan(query)
        ops = names_of(plan)
        assert "SortMergeConcat" in ops
        assert not any("Probe" in name for name in ops)

    def test_indexing_preferred(self):
        query = compile_query(SIMPLE)
        plan = RuleBasedPlanner(RuleStrategy("left", "sm"),
                                sharing="on").plan(query)
        assert "SegGenIndexing" in names_of(plan)

    def test_sharing_off_uses_filter(self):
        query = compile_query(SIMPLE)
        plan = RuleBasedPlanner(RuleStrategy("left", "sm"),
                                sharing="off").plan(query)
        ops = names_of(plan)
        assert "SegGenFilter" in ops and "SegGenIndexing" not in ops

    def test_not_variants(self):
        query = compile_query(NOT_QUERY)
        mat = RuleBasedPlanner(RuleStrategy("left", "probe",
                                            "materialize")).plan(query)
        assert "MaterializeNot" in names_of(mat)
        probe = RuleBasedPlanner(RuleStrategy("left", "probe",
                                              "probe")).plan(query)
        assert "ProbeNot" in names_of(probe)

    def test_sm_with_refs_lifts_filter(self):
        query = compile_query(REFS_QUERY)
        plan = RuleBasedPlanner(RuleStrategy("left", "sm")).plan(query)
        ops = names_of(plan)
        assert "FilterOp" in ops
        assert "SegGenWindow" in ops  # the X leaf became unfiltered

    def test_probe_with_refs_avoids_lift(self):
        query = compile_query(REFS_QUERY)
        plan = RuleBasedPlanner(RuleStrategy("left", "probe")).plan(query)
        # With left-deep probes, UP is bound before X: no Filter needed.
        assert "FilterOp" not in names_of(plan)


class TestCostParams:
    def test_shape_value(self):
        assert shape_value("C", 100) == 1.0
        assert shape_value("L", 7) == 7.0
        assert shape_value("Q", 3) == 9.0
        assert shape_value(None, 5) == 1.0

    def test_shape_invalid(self):
        with pytest.raises(ValueError):
            shape_value("X", 1)

    def test_f_op_linear(self):
        params = CostParams()
        assert params.f_op("SortMergeConcat", 10) == \
            pytest.approx(10 * 671.0)

    def test_f_ind_inf_for_non_indexable(self):
        from repro.aggregates.registry import DEFAULT_REGISTRY
        corr = DEFAULT_REGISTRY.get("corr")
        assert math.isinf(DEFAULT_COST_PARAMS.f_ind(corr, 100))

    def test_expected_distinct_bounds(self):
        assert expected_distinct(0, 100) == 0.0
        assert expected_distinct(100, 0) == 0.0
        value = expected_distinct(50, 100)
        assert 0 < value <= 50
        # More draws, more (or equal) distinct values.
        assert expected_distinct(200, 100) >= value

    def test_expected_distinct_saturates(self):
        assert expected_distinct(1e6, 100) == pytest.approx(100, rel=1e-3)


class TestCostModelComponents:
    def test_lse_estimate_cases(self):
        assert CM.lse_estimate(1, 1, 300) == pytest.approx(100.0)
        assert CM.lse_estimate(1, 50, 300) == 50
        assert CM.lse_estimate(80, 50, 300) == 80

    def test_boxed_pair_fraction_wild(self):
        # Wild window over the full n x n box ~ upper triangle fraction.
        fraction = CM.boxed_pair_fraction(100, 100, 100, (0, math.inf))
        assert fraction == pytest.approx(0.5, abs=0.02)

    def test_boxed_pair_fraction_fixed_duration(self):
        fraction = CM.boxed_pair_fraction(100, 100, 100, (5, 5))
        assert fraction == pytest.approx(95 / (100 * 100), rel=0.1)

    def test_boxed_pair_fraction_empty(self):
        assert CM.boxed_pair_fraction(10, 10, 10, (50, 60)) == 0.0

    def test_concat_window_selectivity_wild(self):
        assert CM.concat_window_selectivity((0, math.inf), (0, 5), (0, 5),
                                            0, 100) == 1.0

    def test_concat_window_selectivity_tight(self):
        # children sum to 2..10; window 0..4 admits roughly the low end.
        sel = CM.concat_window_selectivity((0, 4), (1, 5), (1, 5), 0, 100)
        assert 0 < sel < 1

    def test_containment_selectivity(self):
        assert CM.containment_selectivity((0, 10), (2, 6), 100) == 1.0
        assert CM.containment_selectivity((0, 3), (2, 6), 100) == \
            pytest.approx(0.25)
        assert CM.containment_selectivity((8, 9), (2, 6), 100) == 0.0

    def test_node_duration_bounds_concat(self):
        query = compile_query(SIMPLE)
        series = make_series(np.arange(30.0))
        plan = build_logical_plan(query)
        lo, hi = CM.node_duration_bounds(plan, series)
        assert lo >= 4   # two legs of >= 2 each
        assert hi <= 12  # overall window


class TestCostBasedPlanner:
    def make_series_list(self, seed=0, n=40):
        rng = np.random.default_rng(seed)
        return [make_series(np.cumsum(rng.normal(0, 1, n)) + 50)]

    def test_produces_valid_plan(self):
        query = compile_query(SIMPLE)
        planner = CostBasedPlanner()
        plan = planner.plan(query, None, self.make_series_list())
        assert plan.requires == frozenset()
        assert planner.last_estimated_cost > 0

    def test_batch_mode_has_no_probes(self):
        query = compile_query(SIMPLE)
        planner = CostBasedPlanner(allow_probes=False)
        plan = planner.plan(query, None, self.make_series_list())
        assert not any("Probe" in name for name in names_of(plan))

    def test_sharing_off_no_indexing(self):
        query = compile_query(SIMPLE)
        planner = CostBasedPlanner(sharing="off")
        plan = planner.plan(query, None, self.make_series_list())
        assert "SegGenIndexing" not in names_of(plan)

    def test_estimate_reproducible(self):
        query = compile_query(SIMPLE)
        series = self.make_series_list()
        a = CostBasedPlanner().optimize(query, build_logical_plan(query),
                                        series).cost
        b = CostBasedPlanner().optimize(query, build_logical_plan(query),
                                        series).cost
        assert a == pytest.approx(b)

    def test_wconcat_considered_for_pads(self):
        text = """
        ORDER BY tstamp
        PATTERN (A W B) & WINDOW
        DEFINE A AS val < 40, B AS val > 60, SEGMENT W AS true,
          SEGMENT WINDOW AS window(0, 10)
        """
        query = compile_query(text)
        rng = np.random.default_rng(1)
        series = [make_series(rng.uniform(0, 100, 200))]
        plan = CostBasedPlanner().plan(query, None, series)
        # The planner should fuse the wild pad (or at least produce some
        # valid plan); assert the fused operator is selected here since the
        # pad join is clearly cheapest.
        assert "WildWindowConcat" in names_of(plan)

    def test_empty_series_list_rejected(self):
        query = compile_query(SIMPLE)
        with pytest.raises(PlanError):
            CostBasedPlanner().plan(query, None, [])

    def test_not_choice_depends_on_space(self):
        query = compile_query(NOT_QUERY)
        plan = CostBasedPlanner().plan(query, None,
                                       self.make_series_list(n=60))
        ops = names_of(plan)
        assert ("MaterializeNot" in ops) or ("ProbeNot" in ops)


class TestEngineSelection:
    def test_unknown_label_rejected(self):
        query = compile_query(SIMPLE)
        engine = TRexEngine(optimizer="bogus")
        with pytest.raises(PlanError):
            engine.execute_query(query, [make_series([1, 2, 3])])

    def test_bad_sharing_rejected(self):
        with pytest.raises(PlanError):
            TRexEngine(sharing="sometimes")
