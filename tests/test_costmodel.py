"""Cost-model component tests (costmodel.py + plan_coster branches)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.query import compile_query
from repro.optimizer import costmodel as CM
from repro.optimizer.plan_coster import PlanCostEstimator
from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy
from repro.optimizer.stats import collect_stats
from repro.plan.logical import (LKleene, LNot, LOr, build_logical_plan,
                                walk)

from tests.conftest import make_series


def series_list(seed=0, n=40, count=2):
    rng = np.random.default_rng(seed)
    return [make_series(np.cumsum(rng.normal(0, 1, n)) + 50)
            for _ in range(count)]


class TestDurationBounds:
    def test_or_takes_union(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (A | B) & WIN\n"
            "DEFINE SEGMENT A AS window(2, 4) AND last(A.val) > 0,\n"
            "SEGMENT B AS window(6, 8) AND last(B.val) > 0,\n"
            "SEGMENT WIN AS window(0, 20)")
        plan = build_logical_plan(query)
        series = make_series(np.zeros(30))
        or_node = next(n for n in walk(plan) if isinstance(n, LOr))
        lo, hi = CM.node_duration_bounds(or_node, series)
        assert lo == 2 and hi == 8

    def test_kleene_scales_with_reps(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S{3}) & WIN\n"
            "DEFINE SEGMENT S AS window(2, 2) AND last(S.val) > 0,\n"
            "SEGMENT WIN AS window(0, 30)")
        plan = build_logical_plan(query)
        series = make_series(np.zeros(40))
        kleene = next(n for n in walk(plan) if isinstance(n, LKleene))
        lo, hi = CM.node_duration_bounds(kleene, series)
        assert lo >= 6  # three reps of duration-2 segments

    def test_not_uses_window(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (~F) & WIN\n"
            "DEFINE SEGMENT F AS last(F.val) < 0,\n"
            "SEGMENT WIN AS window(3, 7)")
        plan = build_logical_plan(query)
        series = make_series(np.zeros(20))
        not_node = next(n for n in walk(plan) if isinstance(n, LNot))
        lo, hi = CM.node_duration_bounds(not_node, series)
        assert (lo, hi) == (3, 7)

    def test_time_window_converted_by_avg_step(self):
        from repro.lang.windows import WindowConjunction, WindowSpec
        # 2-day steps: a 10-day window is ~5 index steps.
        series = make_series(np.zeros(11),
                             timestamps=np.arange(0.0, 22.0, 2.0))
        window = WindowConjunction(
            [WindowSpec.time("tstamp", 0, 10, "DAY")])
        lo, hi = CM.window_duration_bounds(window, series)
        assert lo == 0 and hi == pytest.approx(5.0)


class TestBoxedPairFraction:
    @given(ls=st.integers(1, 60), le=st.integers(1, 60),
           lo=st.integers(0, 10), width=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_fraction_in_unit_interval(self, ls, le, lo, width):
        lse = max(ls, le)
        fraction = CM.boxed_pair_fraction(ls, le, lse, (lo, lo + width))
        assert 0.0 <= fraction <= 1.0

    def test_wider_window_never_less_selective(self):
        narrow = CM.boxed_pair_fraction(50, 50, 50, (2, 4))
        wide = CM.boxed_pair_fraction(50, 50, 50, (2, 10))
        assert wide >= narrow

    def test_sampled_start_path(self):
        # ls above the sampling cap still returns something sane.
        fraction = CM.boxed_pair_fraction(10_000, 10_000, 10_000, (0, 10))
        assert 0.0 < fraction < 0.01


class TestConcatSelectivity:
    def test_disjoint_children_cannot_reach_window(self):
        # children sum to >= 20 but the window caps at 10.
        sel = CM.concat_window_selectivity((0, 10), (10, 15), (10, 15), 0,
                                           100)
        assert sel == 0.0

    def test_gap_shifts_total(self):
        tight = CM.concat_window_selectivity((2, 2), (1, 1), (1, 1), 0, 50)
        shifted = CM.concat_window_selectivity((3, 3), (1, 1), (1, 1), 1,
                                               50)
        assert tight == shifted == 1.0

    def test_empty_child_range(self):
        assert CM.concat_window_selectivity((0, 5), (10, 4), (0, 2), 0,
                                            50) == 0.0


class TestPlanCosterBranches:
    def make(self, text, seed=1):
        query = compile_query(text)
        data = series_list(seed)
        stats = collect_stats(query, data)
        return query, PlanCostEstimator(stats, data[0])

    def cost(self, text, strategy=RuleStrategy("left", "probe")):
        query, estimator = self.make(text)
        plan = RuleBasedPlanner(strategy).plan(query)
        value = estimator.estimate(plan)
        assert math.isfinite(value) and value > 0
        return value

    def test_or_plan(self):
        self.cost("ORDER BY tstamp\nPATTERN (A | B) & WIN\n"
                  "DEFINE SEGMENT A AS last(A.val) > 0,\n"
                  "SEGMENT B AS last(B.val) < 0,\n"
                  "SEGMENT WIN AS window(1, 6)")

    def test_not_plans_both_variants(self):
        text = ("ORDER BY tstamp\nPATTERN R & WIN & ~(F W)\n"
                "DEFINE SEGMENT R AS last(R.val) > first(R.val),\n"
                "SEGMENT WIN AS window(1, 6),\n"
                "SEGMENT F AS last(F.val) < first(F.val),\n"
                "SEGMENT W AS true")
        materialize = self.cost(text, RuleStrategy("left", "probe",
                                                   "materialize"))
        probe = self.cost(text, RuleStrategy("left", "probe", "probe"))
        assert materialize != probe

    def test_kleene_plan(self):
        self.cost("ORDER BY tstamp\nPATTERN ((UP & W)+) & WIN\n"
                  "DEFINE SEGMENT W AS window(1, 3),\n"
                  "SEGMENT UP AS last(UP.val) > first(UP.val),\n"
                  "SEGMENT WIN AS window(2, 9)")

    def test_filter_plan(self):
        # Sort-merge over references forces a Filter.
        self.cost("ORDER BY tstamp\nPATTERN (UP G X) & WIN\n"
                  "DEFINE SEGMENT UP AS last(UP.val) > first(UP.val),\n"
                  "SEGMENT G AS true,\n"
                  "SEGMENT X AS corr(X.val, UP.val) > 0.5 AND window(2, 4),"
                  "\nSEGMENT WIN AS window(3, 10)",
                  RuleStrategy("left", "sm"))

    def test_bigger_data_bigger_cost(self):
        text = ("ORDER BY tstamp\nPATTERN (UP & W) & WIN\n"
                "DEFINE SEGMENT W AS window(2, null),\n"
                "SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val)"
                " >= 0.8,\nSEGMENT WIN AS window(1, 10)")
        query = compile_query(text)
        small = series_list(2, n=30)
        big = series_list(2, n=120)
        plan = RuleBasedPlanner(RuleStrategy("left", "sm")).plan(query)
        small_cost = PlanCostEstimator(
            collect_stats(query, small), small[0]).estimate(plan)
        big_cost = PlanCostEstimator(
            collect_stats(query, big), big[0]).estimate(plan)
        assert big_cost > small_cost
