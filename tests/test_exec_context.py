"""Execution context tests: index caches, providers, probe caches."""

import numpy as np
import pytest

from repro.exec.base import ExecContext, refs_key
from repro.lang import expr as E
from repro.lang.parser import parse_condition

from tests.conftest import make_series


@pytest.fixture
def series():
    rng = np.random.default_rng(3)
    return make_series(np.cumsum(rng.normal(0, 1, 30)))


def agg_call(text):
    cond = parse_condition(text)
    return E.aggregate_calls(cond)[0]


class TestIndexCache:
    def test_index_built_once_per_signature(self, series):
        ctx = ExecContext(series)
        call = agg_call("linear_reg_r2(X.tstamp, X.val) > 0")
        from repro.aggregates.registry import DEFAULT_REGISTRY
        agg = DEFAULT_REGISTRY.get("linear_reg_r2")
        a = ctx.aggregate_index(agg, call, ())
        b = ctx.aggregate_index(agg, call, ())
        assert a is b
        assert ctx.stats["index_builds"] == 1

    def test_different_columns_different_indexes(self, series):
        ctx = ExecContext(series)
        from repro.aggregates.registry import DEFAULT_REGISTRY
        agg = DEFAULT_REGISTRY.get("sum")
        a = ctx.aggregate_index(agg, agg_call("sum(val) > 0"), ())
        b = ctx.aggregate_index(agg, agg_call("sum(tstamp) > 0"), ())
        assert a is not b

    def test_prebuild_skips_non_indexable(self, series):
        ctx = ExecContext(series)
        calls = [agg_call("corr(X.val, Y.val) > 0"),
                 agg_call("sum(val) > 0")]
        ctx.prebuild_indexes(calls)
        assert ctx.stats["index_builds"] == 1


class TestProviders:
    def test_indexed_provider_uses_lookup(self, series):
        ctx = ExecContext(series)
        cond = parse_condition("sum(val) > 0")
        ectx = E.EvalContext(series, 2, 6, variable="X",
                             provider=ctx.indexed_provider)
        E.evaluate(cond, ectx)
        assert ctx.stats["index_lookups"] == 1
        assert ctx.stats["direct_agg_evals"] == 0

    def test_direct_provider_counts(self, series):
        ctx = ExecContext(series)
        cond = parse_condition("sum(val) > 0")
        ectx = E.EvalContext(series, 2, 6, variable="X",
                             provider=ctx.direct_provider)
        E.evaluate(cond, ectx)
        assert ctx.stats["direct_agg_evals"] == 1
        assert ctx.stats["index_lookups"] == 0

    def test_cross_segment_call_bypasses_index(self, series):
        ctx = ExecContext(series)
        cond = parse_condition("corr(X.val, UP.val) > 0")
        ectx = E.EvalContext(series, 5, 9, variable="X",
                             refs={"UP": (0, 4)},
                             provider=ctx.indexed_provider)
        E.evaluate(cond, ectx)
        assert ctx.stats["index_lookups"] == 0
        assert ctx.stats["direct_agg_evals"] == 1

    def test_indexed_and_direct_agree(self, series):
        ctx = ExecContext(series)
        cond = parse_condition("linear_reg_r2(X.tstamp, X.val)")
        via_index = E.evaluate(cond, E.EvalContext(
            series, 3, 12, variable="X", provider=ctx.indexed_provider))
        direct = E.evaluate(cond, E.EvalContext(
            series, 3, 12, variable="X", provider=ctx.direct_provider))
        assert via_index == pytest.approx(direct, abs=1e-6)


class TestProbeCache:
    def test_round_trip(self, series):
        ctx = ExecContext(series)
        assert ctx.probe_cache_get(("k",)) is None
        ctx.probe_cache_put(("k",), [1, 2])
        assert ctx.probe_cache_get(("k",)) == [1, 2]

    def test_refs_key_projection(self):
        refs = {"A": (0, 1), "B": (2, 3), "C": (4, 5)}
        assert refs_key(refs, frozenset({"A", "C"})) == \
            (("A", (0, 1)), ("C", (4, 5)))
        assert refs_key(refs, frozenset()) == ()

    def test_refs_key_ignores_missing(self):
        assert refs_key({"A": (0, 1)}, frozenset({"A", "Z"})) == \
            (("A", (0, 1)),)

    def test_probe_entries_not_shared_across_refs(self):
        """Two probes at the same (op_id, probe-space) whose referenced
        segments differ must not share a cache entry: the probed child's
        condition reads the referenced segment, so a shared entry would
        return results computed under the wrong binding."""
        from repro.exec.concat import RightProbeConcat
        from repro.exec.seggen import SegGenFilter, SegGenWindow
        from repro.lang.query import VarDef
        from repro.lang.windows import WindowConjunction, WindowSpec
        from repro.plan.search_space import SearchSpace

        series = make_series([5, 1, 0, 3])
        left = SegGenWindow(
            WindowConjunction([WindowSpec.point(1, 2)]), "L",
            publish=frozenset({"L"}))
        right_var = VarDef(
            "R", False, (WindowSpec.point_fixed(0),),
            parse_condition("first(R.val) > first(L.val)"),
            frozenset({"L"}))
        right = SegGenFilter(right_var, right_var.window_conjunction)
        op = RightProbeConcat(left, right, 1,
                              WindowConjunction.wild())
        ctx = ExecContext(series)
        got = sorted({seg.bounds
                      for seg in op.eval(ctx, SearchSpace.full(4), {})})
        # Lefts (0, 1), (0, 2) and (1, 2): the two ending at index 2
        # probe the same space (point 3) but under different L bindings,
        # so every probe must miss the cache and evaluate.
        assert ctx.stats["probe_calls"] == 3
        assert ctx.stats["probe_cache_hits"] == 0
        # Only L = (1, 2) has first(L.val) = 1 < 3 = the probed value.
        assert got == [(1, 3)]


class TestExplainMatch:
    def test_bindings_via_engine(self):
        from repro.core.engine import TRexEngine
        from repro.lang.query import compile_query
        series = make_series([3, 1, 4])
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (DN UP) & WIN\n"
            "DEFINE SEGMENT DN AS last(DN.val) < first(DN.val),\n"
            "SEGMENT UP AS last(UP.val) > first(UP.val),\n"
            "SEGMENT WIN AS window(2, 4)")
        engine = TRexEngine()
        envs = engine.explain_match(query, series, 0, 2)
        assert envs == [{"DN": (0, 1), "UP": (1, 2), "WIN": (0, 2)}] or \
            {"DN": (0, 1), "UP": (1, 2)}.items() <= envs[0].items()

    def test_no_bindings_for_non_match(self):
        from repro.core.engine import TRexEngine
        from repro.lang.query import compile_query
        series = make_series([1, 2, 3])
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (DN)\n"
            "DEFINE SEGMENT DN AS last(DN.val) < first(DN.val)")
        assert TRexEngine().explain_match(query, series, 0, 2) == []
