"""Window specs and conjunctions: ranges, counting, selectivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindError
from repro.lang.windows import WILD, WindowConjunction, WindowSpec

from tests.conftest import make_series


def conj(*specs):
    return WindowConjunction(list(specs))


class TestWindowSpec:
    def test_point_bounds(self):
        spec = WindowSpec.point(2, 5)
        assert (spec.lo, spec.hi) == (2.0, 5.0)
        assert not spec.is_wild

    def test_fixed(self):
        spec = WindowSpec.point_fixed(4)
        assert (spec.lo, spec.hi) == (4.0, 4.0)

    def test_wild(self):
        assert WILD.is_wild

    def test_unbounded_not_wild_with_lower(self):
        assert not WindowSpec.point(1, None).is_wild

    def test_negative_lower_rejected(self):
        with pytest.raises(BindError):
            WindowSpec.point(-1, 5)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(BindError):
            WindowSpec.point(5, 2)

    def test_time_needs_unit(self):
        with pytest.raises(BindError):
            WindowSpec("time", 0, 5, "tstamp", None)

    def test_relax_lower(self):
        relaxed = WindowSpec.point(3, 9).relax_lower()
        assert (relaxed.lo, relaxed.hi) == (0.0, 9.0)

    def test_time_bounds_convert_units(self):
        series = make_series(np.zeros(5), time_unit="HOUR")
        spec = WindowSpec.time("tstamp", 1, 2, "DAY")
        assert spec.bounds_on(series) == (24.0, 48.0)


class TestEndRange:
    def test_point_window(self):
        series = make_series(np.zeros(20))
        window = conj(WindowSpec.point(2, 5))
        assert window.end_range(series, 3) == (5, 8)

    def test_clamps_to_series(self):
        series = make_series(np.zeros(10))
        window = conj(WindowSpec.point(2, 50))
        assert window.end_range(series, 5) == (7, 9)

    def test_time_window_irregular_timestamps(self):
        series = make_series(np.zeros(6),
                             timestamps=[0.0, 1.0, 4.0, 5.0, 9.0, 30.0])
        window = conj(WindowSpec.time("tstamp", 0, 5, "DAY"))
        lo, hi = window.end_range(series, 0)
        assert lo == 0
        assert hi == 3  # timestamps up to 5.0

    def test_conjunction_intersects(self):
        series = make_series(np.zeros(30))
        window = conj(WindowSpec.point(2, 20), WindowSpec.point(0, 6))
        assert window.end_range(series, 0) == (2, 6)

    def test_empty_when_unsatisfiable(self):
        series = make_series(np.zeros(5))
        window = conj(WindowSpec.point(10, 20))
        lo, hi = window.end_range(series, 0)
        assert lo > hi


class TestStartRange:
    def test_mirror_of_end_range(self):
        series = make_series(np.zeros(20))
        window = conj(WindowSpec.point(2, 5))
        assert window.start_range(series, 10) == (5, 8)

    def test_time_window(self):
        series = make_series(np.zeros(6),
                             timestamps=[0.0, 1.0, 4.0, 5.0, 9.0, 30.0])
        window = conj(WindowSpec.time("tstamp", 0, 5, "DAY"))
        lo, hi = window.start_range(series, 3)
        # Starts with duration <= 5 ending at ts=5.0: ts >= 0.0 -> all of
        # 0..3 qualify for the upper bound; lower bound 0 keeps start <= 3.
        assert (lo, hi) == (0, 3)

    def test_consistency_with_accepts(self):
        series = make_series(np.zeros(25))
        window = conj(WindowSpec.point(3, 7))
        for end in range(len(series)):
            lo, hi = window.start_range(series, end)
            for start in range(0, end + 1):
                expected = window.accepts(series, start, end)
                got = lo <= start <= hi
                assert got == expected, (start, end)


class TestIterate:
    def test_matches_accepts(self):
        series = make_series(np.zeros(12))
        window = conj(WindowSpec.point(1, 4))
        pairs = set(window.iterate(series, 0, 11, 0, 11))
        expected = {(s, e) for s in range(12) for e in range(s, 12)
                    if window.accepts(series, s, e)}
        assert pairs == expected

    def test_boxed(self):
        series = make_series(np.zeros(12))
        window = conj(WindowSpec.point(0, 3))
        pairs = set(window.iterate(series, 2, 4, 5, 6))
        assert pairs == {(2, 5), (3, 5), (3, 6), (4, 5), (4, 6)}

    def test_iterate_by_end_same_pairs(self):
        series = make_series(np.zeros(15))
        window = conj(WindowSpec.point(1, 5))
        a = set(window.iterate(series, 0, 14, 0, 14))
        b = set(window.iterate_by_end(series, 0, 14, 0, 14))
        assert a == b

    def test_iterate_box_picks_cheap_direction(self):
        series = make_series(np.zeros(15))
        window = conj(WindowSpec.point(0, 4))
        # End pinned: box iteration must still yield the right pairs.
        pairs = set(window.iterate_box(series, 0, 14, 9, 9))
        assert pairs == {(s, 9) for s in range(5, 10)}

    def test_count_pairs(self):
        series = make_series(np.zeros(10))
        window = conj(WindowSpec.point(2, 2))
        assert window.count_pairs(series, 0, 9, 0, 9) == 8


class TestSelectivity:
    def test_wild_full_box(self):
        series = make_series(np.zeros(10))
        sel = WindowConjunction.wild().selectivity(series, 0, 9, 0, 9)
        assert sel == pytest.approx(55 / 100)

    def test_exact_small(self):
        series = make_series(np.zeros(10))
        window = conj(WindowSpec.point(0, 2))
        count = window.count_pairs(series, 0, 9, 0, 9)
        sel = window.selectivity(series, 0, 9, 0, 9)
        assert sel == pytest.approx(count / 100)

    def test_empty_box(self):
        series = make_series(np.zeros(10))
        assert conj(WindowSpec.point(0, 2)).selectivity(
            series, 5, 3, 0, 9) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(lo=st.integers(0, 4), width=st.integers(0, 6),
           n=st.integers(3, 24))
    def test_count_matches_enumeration(self, lo, width, n):
        series = make_series(np.zeros(n))
        window = conj(WindowSpec.point(lo, lo + width))
        count = window.count_pairs(series, 0, n - 1, 0, n - 1)
        expected = sum(1 for s in range(n) for e in range(s, n)
                       if lo <= e - s <= lo + width)
        assert count == expected


class TestConjunction:
    def test_and_also(self):
        combined = conj(WindowSpec.point(0, 9)).and_also(
            conj(WindowSpec.point(2, 5)))
        assert len(combined.specs) == 2

    def test_wild_specs_dropped(self):
        assert conj(WILD).is_wild

    def test_equality_and_hash(self):
        a = conj(WindowSpec.point(1, 3))
        b = conj(WindowSpec.point(1, 3))
        assert a == b and hash(a) == hash(b)

    def test_relax_lower(self):
        relaxed = conj(WindowSpec.point(3, 8)).relax_lower()
        (spec,) = relaxed.specs
        assert (spec.lo, spec.hi) == (0.0, 8.0)

    def test_point_duration_bounds(self):
        window = conj(WindowSpec.point(2, 10), WindowSpec.point(0, 7))
        assert window.point_duration_bounds() == (2, 7)

    def test_describe(self):
        assert "window(1, 5)" in conj(WindowSpec.point(1, 5)).describe()
        assert WindowConjunction.wild().describe() == "wild"


class TestIrregularTimestamps:
    @settings(max_examples=40, deadline=None)
    @given(steps=st.lists(st.floats(min_value=0.1, max_value=5.0,
                                    allow_nan=False),
                          min_size=3, max_size=20),
           lo=st.floats(min_value=0, max_value=10),
           width=st.floats(min_value=0, max_value=10))
    def test_ranges_consistent_with_accepts(self, steps, lo, width):
        import numpy as np
        timestamps = np.concatenate([[0.0], np.cumsum(steps)])
        series = make_series(np.zeros(len(timestamps)),
                             timestamps=timestamps)
        window = conj(WindowSpec.time("tstamp", lo, lo + width, "DAY"))
        n = len(series)
        for start in range(n):
            e_lo, e_hi = window.end_range(series, start)
            for end in range(start, n):
                expected = window.accepts(series, start, end)
                assert (e_lo <= end <= e_hi) == expected, (start, end)

    @settings(max_examples=30, deadline=None)
    @given(steps=st.lists(st.floats(min_value=0.1, max_value=5.0,
                                    allow_nan=False),
                          min_size=3, max_size=16),
           hi=st.floats(min_value=0.5, max_value=12))
    def test_iterate_directions_agree(self, steps, hi):
        import numpy as np
        timestamps = np.concatenate([[0.0], np.cumsum(steps)])
        series = make_series(np.zeros(len(timestamps)),
                             timestamps=timestamps)
        window = conj(WindowSpec.time("tstamp", 0, hi, "DAY"))
        n = len(series)
        forward = set(window.iterate(series, 0, n - 1, 0, n - 1))
        backward = set(window.iterate_by_end(series, 0, n - 1, 0, n - 1))
        assert forward == backward
