"""Failure injection: malformed inputs must fail loudly and clearly."""

import math

import numpy as np
import pytest

from repro import TRexEngine, Table, find_matches
from repro.core.bruteforce import BruteForceMatcher
from repro.errors import (BindError, DataError, PlanError, QuerySyntaxError,
                          TRexError)
from repro.lang.query import compile_query

from tests.conftest import make_series


class TestSyntaxFailures:
    @pytest.mark.parametrize("text", [
        "PATTERN",                                  # dangling clause
        "ORDER BY\nPATTERN (A)",                    # missing column
        "ORDER BY t\nPATTERN (A",                   # unbalanced paren
        "ORDER BY t\nPATTERN (A)\nDEFINE A AS",     # missing condition
        "ORDER BY t\nPATTERN (A) DEFINE",           # DEFINE without entries
        "ORDER BY t\nPATTERN ()",                   # empty pattern
        "ORDER BY t\nPATTERN (A{,3})",              # malformed quantifier
    ])
    def test_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            compile_query(text)

    def test_error_carries_position(self):
        try:
            compile_query("ORDER BY t\nPATTERN (A @ B)")
        except QuerySyntaxError as error:
            assert error.line == 2
        else:
            pytest.fail("expected a syntax error")


class TestBindFailures:
    def test_all_errors_are_trex_errors(self):
        for exc in (QuerySyntaxError, BindError, PlanError, DataError):
            assert issubclass(exc, TRexError)

    def test_segment_keyword_required_for_window(self):
        with pytest.raises(BindError):
            compile_query("ORDER BY t\nPATTERN (A)\n"
                          "DEFINE A AS window(1, 2)")

    def test_self_referential_only(self):
        # A window bound to a different variable's column is rejected.
        with pytest.raises(BindError):
            compile_query("ORDER BY t\nPATTERN (A B)\n"
                          "DEFINE SEGMENT A AS window(B.t, 1, 2, DAY),\n"
                          "SEGMENT B AS true")


class TestDataFailures:
    def test_query_column_missing_from_table(self):
        table = Table({"tstamp": [0.0, 1.0], "price": [1.0, 2.0]})
        with pytest.raises(DataError):
            find_matches(table, "ORDER BY tstamp\nPATTERN (A)\n"
                                "DEFINE A AS volume > 1")

    def test_nan_values_do_not_match_comparisons(self):
        series = make_series([1.0, math.nan, 3.0])
        query = compile_query("ORDER BY tstamp\nPATTERN (A)\n"
                              "DEFINE A AS val > 0")
        got = TRexEngine().execute_query(query, [series])
        assert got.per_series[0].matches == [(0, 0), (2, 2)]

    def test_nan_in_aggregate_is_not_a_match(self):
        series = make_series([1.0, math.nan, 3.0, 4.0, 5.0])
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\n"
            "DEFINE SEGMENT S AS window(1, 3) AND "
            "linear_reg_r2_signed(S.tstamp, S.val) >= 0.9")
        got = TRexEngine().execute_query(query, [series])
        # Segments touching the NaN cannot satisfy the R2 threshold.
        assert all(not (s <= 1 <= e) for s, e in got.per_series[0].matches)

    def test_empty_table(self):
        table = Table({"tstamp": np.asarray([], dtype=np.float64),
                       "val": np.asarray([], dtype=np.float64)})
        result = find_matches(table, "ORDER BY tstamp\nPATTERN (A)\n"
                                     "DEFINE A AS val > 1")
        assert result.total_matches == 0


class TestScopingFailures:
    def test_reference_into_not_body(self):
        text = """
        ORDER BY tstamp
        PATTERN (X & ~(F W)) & WIN
        DEFINE SEGMENT X AS corr(X.val, F.val) > 0.5,
          SEGMENT F AS last(F.val) < first(F.val),
          SEGMENT W AS true,
          SEGMENT WIN AS window(1, 5)
        """
        query = compile_query(text)
        with pytest.raises(PlanError):
            TRexEngine().execute_query(query, [make_series([1, 2, 3])])

    def test_reference_into_kleene_body(self):
        text = """
        ORDER BY tstamp
        PATTERN ((R & W)+ X) & WIN
        DEFINE SEGMENT R AS last(R.val) > first(R.val),
          SEGMENT W AS window(1, 2),
          SEGMENT X AS corr(X.val, R.val) > 0.5,
          SEGMENT WIN AS window(1, 8)
        """
        query = compile_query(text)
        with pytest.raises(PlanError):
            TRexEngine().execute_query(query, [make_series([1, 2, 3])])

    def test_zero_min_kleene_guided_rejection(self):
        text = """
        ORDER BY tstamp
        PATTERN ((S & W)*) & WIN
        DEFINE SEGMENT S AS last(S.val) > first(S.val),
          SEGMENT W AS window(1, 2), SEGMENT WIN AS window(0, 5)
        """
        query = compile_query(text)
        series = make_series([1, 2, 3])
        with pytest.raises((PlanError, ValueError)):
            TRexEngine().execute_query(query, [series])
        with pytest.raises(PlanError):
            BruteForceMatcher(query).match_series(series)


class TestRuntimeEdgeCases:
    def test_division_by_zero_condition(self):
        series = make_series([0.0, 1.0, 2.0])
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\nDEFINE SEGMENT S AS "
            "last(S.val) / first(S.val) > 2 AND window(1, 2)")
        got = TRexEngine().execute_query(query, [series])
        # first=0 -> inf > 2 is true; matches starting at index 0 count.
        assert (0, 1) in got.per_series[0].matches

    def test_constant_series(self):
        series = make_series([5.0] * 10)
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\nDEFINE SEGMENT S AS "
            "window(1, 3) AND linear_reg_r2_signed(S.tstamp, S.val) >= 0.5")
        got = TRexEngine().execute_query(query, [series])
        assert got.total_matches == 0

    def test_two_point_series(self):
        series = make_series([1.0, 2.0])
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (DN UP) & WIN\n"
            "DEFINE SEGMENT DN AS last(DN.val) < first(DN.val),\n"
            "SEGMENT UP AS last(UP.val) > first(UP.val),\n"
            "SEGMENT WIN AS window(1, 4)")
        got = TRexEngine().execute_query(query, [series])
        assert got.total_matches == 0
