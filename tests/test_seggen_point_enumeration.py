"""Point-variable leaf enumeration must stay on the diagonal.

A point variable only ever matches single-point segments ``(i, i)``, so a
``SegGen`` leaf evaluating one must iterate the diagonal of the search
space — not the full start x end box.  The fuzzer's tick accounting
exposed the quadratic version: n=40 cost 820 condition evaluations where
40 suffice.  These tests pin both the match set and the work done.
"""

import numpy as np

from repro.exec.base import ExecContext
from repro.lang.query import compile_query
from repro.optimizer.planner import CostBasedPlanner
from repro.plan.search_space import SearchSpace

from tests.conftest import make_series


def _eval_leaf(query_text, values, space=None):
    query = compile_query(query_text)
    series = make_series(values)
    op = CostBasedPlanner().plan(query, None, series)
    ctx = ExecContext(series, query.registry)
    space = space if space is not None else SearchSpace.full(len(series))
    matches = sorted(seg.bounds for seg in op.eval(ctx, space, {}))
    return matches, ctx.stats


def test_point_leaf_enumeration_is_linear():
    n = 40
    matches, stats = _eval_leaf(
        "ORDER BY tstamp PATTERN P DEFINE P AS P.val > 0.5", np.ones(n))
    assert matches == [(i, i) for i in range(n)]
    # Diagonal iteration: one condition evaluation per admissible point,
    # not one per (start, end) pair of the box (n*(n+1)/2 = 820 here).
    assert stats["condition_evals"] == n


def test_point_leaf_respects_search_space_box():
    values = np.ones(20)
    space = SearchSpace(5, 12, 8, 15)
    matches, stats = _eval_leaf(
        "ORDER BY tstamp PATTERN P DEFINE P AS P.val > 0.5", values, space)
    # Diagonal of the box: start and end ranges intersected.
    assert matches == [(i, i) for i in range(8, 13)]
    assert stats["condition_evals"] == 5


def test_point_leaf_empty_space_does_no_work():
    matches, stats = _eval_leaf(
        "ORDER BY tstamp PATTERN P DEFINE P AS P.val > 0.5", np.ones(10),
        SearchSpace.empty())
    assert matches == []
    assert stats["condition_evals"] == 0


def test_point_leaf_condition_still_filters():
    values = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
    matches, stats = _eval_leaf(
        "ORDER BY tstamp PATTERN P DEFINE P AS P.val > 0.5", values)
    assert matches == [(0, 0), (2, 2), (4, 4)]
    assert stats["condition_evals"] == 5
