"""Chaos under concurrency: faults inside parallel workers.

The serial chaos suite (tests/test_chaos.py) pins exact per-series
outcomes because serial firing order is deterministic.  Under a worker
pool the *order* series hit a fault point is scheduling-dependent, so
this suite asserts the guarantees that survive concurrency
(docs/PARALLELISM.md):

* a fault that fires on every hit fails every series, under every
  backend and policy, without leaking across series;
* partial harvests are always a sorted, duplicate-free subset of the
  clean run's matches;
* a blown global budget produces the exact serial result (settlement +
  replay), even when the shared ledger interrupted workers mid-flight;
* the process backend re-arms ``TREX_FAULTS`` inside pool workers and
  degrades cleanly (thread fallback, ``WorkerCrashed``) when plans or
  errors cannot cross the process boundary.
"""

import pickle

import numpy as np
import pytest

from repro.core import parallel
from repro.core.engine import TRexEngine
from repro.core.parallel import (LedgerExhausted, SegmentLedger,
                                 reset_pools)
from repro.errors import WorkerCrashed, error_kind
from repro.lang.query import compile_query
from repro.testing import faults

from tests.conftest import make_series
from tests.test_chaos import FAMILY_QUERIES, plan_operator_names


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.delenv("TREX_EXECUTOR", raising=False)
    monkeypatch.delenv("TREX_WORKERS", raising=False)
    monkeypatch.delenv("TREX_FAULTS", raising=False)
    faults.disarm_all()
    yield
    faults.disarm_all()
    reset_pools()


def workload(num_series=4, n=24, seed=55):
    return [make_series(
        np.cumsum(np.random.default_rng(seed + i).normal(0, 1.2, n)) + 50,
        key=(f"s{i}",)) for i in range(num_series)]


def clean_result(query_text, series_list):
    return TRexEngine().execute_query(compile_query(query_text),
                                      series_list)


def signature(result):
    return ([(e.key, tuple(e.matches),
              e.error.to_dict() if e.error is not None else None)
             for e in result.per_series],
            result.interrupted, result.degradation)


class TestOperatorFaultsInWorkers:
    """Programmatic faults fire inside thread workers (shared registry)."""

    @pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
    def test_every_series_fails_under_each_policy(self, family):
        query = compile_query(FAMILY_QUERIES[family])
        series_list = workload()
        op_name = plan_operator_names(query, series_list)[0]
        point = f"exec.{op_name}.eval"
        # raise: the first (series-order) worker failure propagates.
        with faults.inject(point):
            with pytest.raises(faults.InjectedFault):
                TRexEngine(executor="thread", workers=2).execute_query(
                    query, series_list)
        # skip: every series hits the fault; all isolated, no matches.
        with faults.inject(point):
            result = TRexEngine(executor="thread", workers=2,
                                on_error="skip").execute_query(
                query, series_list)
        assert [e.key for e in result.errors] == \
            [s.key for s in series_list]
        assert all(e.kind == "execution" for e in result.errors)
        assert result.total_matches == 0
        assert not result.interrupted

    @pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
    def test_partial_harvests_are_clean_subsets(self, family):
        """Whichever series a late-firing fault lands on, each kept
        harvest is a sorted duplicate-free subset of the clean run."""
        query = compile_query(FAMILY_QUERIES[family])
        series_list = workload()
        clean = TRexEngine().execute_query(query, series_list)
        reference = {e.key: e.matches for e in clean.per_series}
        op_name = plan_operator_names(query, series_list)[0]
        # Fires from the 3rd hit on: some series complete clean, the
        # rest stop mid-harvest — which ones is scheduling-dependent.
        with faults.inject(f"exec.{op_name}.eval", on_hit=3):
            result = TRexEngine(executor="thread", workers=2,
                                on_error="partial").execute_query(
                query, series_list)
        for entry in result.per_series:
            assert entry.matches == sorted(set(entry.matches))
            assert set(entry.matches) <= set(reference[entry.key])
            if entry.error is None:
                assert entry.matches == reference[entry.key]

    def test_crash_faults_isolated_as_internal(self):
        query = compile_query(FAMILY_QUERIES["and"])
        series_list = workload()
        op_name = plan_operator_names(query, series_list)[0]
        with faults.inject(f"exec.{op_name}.eval", action="crash"):
            result = TRexEngine(executor="thread", workers=2,
                                on_error="skip").execute_query(
                query, series_list)
        assert len(result.errors) == len(series_list)
        assert all(e.kind == "internal" for e in result.errors)


class TestGlobalBudgetUnderConcurrency:
    @pytest.mark.parametrize("executor", ("thread", "process"))
    @pytest.mark.parametrize("max_segments", (10, 80, 300))
    def test_blown_budget_equals_serial_exactly(self, executor,
                                                max_segments):
        """The ledger may interrupt workers in any order; the merged
        result must still be the serial engine's, bit for bit."""
        series_list = workload(num_series=6)
        query_text = FAMILY_QUERIES["kleene"]
        serial = TRexEngine(max_segments=max_segments,
                            on_error="partial").execute_query(
            compile_query(query_text), series_list)
        got = TRexEngine(executor=executor, workers=4,
                         max_segments=max_segments,
                         on_error="partial").execute_query(
            compile_query(query_text), series_list)
        assert signature(got) == signature(serial)

    def test_interrupted_subset_of_clean(self):
        series_list = workload(num_series=6)
        query_text = FAMILY_QUERIES["kleene"]
        clean = clean_result(query_text, series_list)
        reference = {e.key: e.matches for e in clean.per_series}
        result = TRexEngine(executor="thread", workers=4, max_segments=40,
                            on_error="partial").execute_query(
            compile_query(query_text), series_list)
        assert result.interrupted
        assert result.degradation.startswith("budget")
        for entry in result.per_series:
            assert entry.matches == sorted(set(entry.matches))
            assert set(entry.matches) <= set(reference[entry.key])

    def test_ledger_raises_and_classifies_as_budget(self):
        ledger = SegmentLedger(3)
        ledger.charge(2)
        ledger.charge(1)
        with pytest.raises(LedgerExhausted) as info:
            ledger.charge(1)
        assert error_kind(info.value) == "budget"
        assert ledger.total == 4


class TestProcessBackendChaos:
    def test_env_faults_rearmed_inside_workers(self, monkeypatch):
        """TREX_FAULTS reaches forked pool workers even though the
        parent armed nothing programmatically."""
        monkeypatch.setenv("TREX_FAULTS", "data.series:data")
        reset_pools()
        query = compile_query(FAMILY_QUERIES["or"])
        series_list = workload()
        result = TRexEngine(executor="process", workers=2,
                            on_error="skip").execute_query(
            query, series_list)
        assert [e.key for e in result.errors] == \
            [s.key for s in series_list]
        assert all(e.kind == "data" for e in result.errors)
        # The parent process never armed the fault registry itself.
        assert not faults.ENABLED

    def test_unpicklable_plan_falls_back_to_threads(self, monkeypatch):
        monkeypatch.setattr(parallel, "_plan_is_picklable",
                            lambda plan, query: False)
        query_text = FAMILY_QUERIES["or"]
        series_list = workload()
        serial = clean_result(query_text, series_list)
        got = TRexEngine(executor="process", workers=2).execute_query(
            compile_query(query_text), series_list)
        assert signature(got) == signature(serial)

    def test_unpicklable_worker_error_becomes_worker_crashed(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("not today")

        wrapped = parallel._pickle_safe_error(Unpicklable("boom"))
        assert isinstance(wrapped, WorkerCrashed)
        assert "Unpicklable" in str(wrapped)
        assert error_kind(wrapped) == "execution"
        pickle.loads(pickle.dumps(wrapped))  # must round-trip
        passthrough = parallel._pickle_safe_error(ValueError("fine"))
        assert isinstance(passthrough, ValueError)
        assert parallel._pickle_safe_error(None) is None

    def test_worker_crashed_isolated_by_policy(self, monkeypatch):
        """A crashed pool maps to per-series WorkerCrashed outcomes."""
        class BrokenFuture:
            def result(self):
                raise RuntimeError("worker died")

        class BrokenPool:
            def submit(self, fn, *args):
                return BrokenFuture()

        monkeypatch.setattr(parallel, "_get_process_pool",
                            lambda workers: BrokenPool())
        query = compile_query(FAMILY_QUERIES["or"])
        series_list = workload(num_series=2)
        result = TRexEngine(executor="process", workers=2,
                            on_error="skip").execute_query(
            query, series_list)
        assert len(result.errors) == 2
        assert all(e.error == "WorkerCrashed" for e in result.errors)
        assert all(e.kind == "execution" for e in result.errors)
