"""Engine deadline/limit features and the shape-stats aggregates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import DEFAULT_REGISTRY
from repro.aggregates.shape_stats import MaxDrawdown, Median, Slope
from repro.core.engine import TRexEngine
from repro.errors import PlanError, QueryTimeout
from repro.lang.query import compile_query

from tests.conftest import make_series

floats = st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False),
                  min_size=2, max_size=30)


class TestSlope:
    def test_linear(self):
        x = np.arange(8.0)
        assert Slope().evaluate([x, 3 * x - 2], []) == pytest.approx(3.0)

    def test_constant_x_zero(self):
        assert Slope().evaluate([np.ones(5), np.arange(5.0)], []) == 0.0

    @given(floats)
    @settings(max_examples=30, deadline=None)
    def test_index_matches_direct(self, values):
        agg = Slope()
        x = np.arange(float(len(values)))
        y = np.asarray(values)
        index = agg.build_index([x, y], [])
        for start in range(0, len(values) - 1, max(len(values) // 4, 1)):
            end = min(start + 6, len(values) - 1)
            assert index.lookup(start, end) == pytest.approx(
                agg.evaluate([x[start:end + 1], y[start:end + 1]], []),
                abs=1e-6)

    def test_registered(self):
        assert "slope" in DEFAULT_REGISTRY


class TestMedianAndDrawdown:
    def test_median(self):
        assert Median().evaluate([np.asarray([5.0, 1.0, 9.0])], []) == 5.0

    def test_median_not_indexable(self):
        assert not Median().supports_index

    def test_drawdown_simple(self):
        values = np.asarray([10.0, 12.0, 6.0, 8.0])
        assert MaxDrawdown().evaluate([values], []) == pytest.approx(0.5)

    def test_drawdown_monotone_rise_is_zero(self):
        assert MaxDrawdown().evaluate([np.arange(1.0, 6.0)], []) == 0.0

    def test_drawdown_in_query(self):
        series = make_series([10, 12, 6, 8, 9])
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\nDEFINE SEGMENT S AS "
            "max_drawdown(S.val) >= 0.4 AND window(1, 4)")
        result = TRexEngine().execute_query(query, [series])
        assert (1, 2) in result.per_series[0].matches

    @given(floats)
    @settings(max_examples=30, deadline=None)
    def test_drawdown_bounded(self, values):
        arr = np.asarray(values) + 100.0  # keep positive
        value = MaxDrawdown().evaluate([arr], [])
        assert 0.0 <= value <= 1.0


QUERY = """
ORDER BY tstamp
PATTERN ((DN & W) (UP & W)) & WINDOW
DEFINE SEGMENT W AS window(2, null),
  SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.val) <= -0.5,
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.val) >= 0.5,
  SEGMENT WINDOW AS window(1, 20)
"""


class TestLimits:
    def make_series_list(self, count=3, n=60):
        rng = np.random.default_rng(0)
        return [make_series(np.cumsum(rng.normal(0, 1, n)) + 50,
                            key=(f"s{i}",)) for i in range(count)]

    def test_max_matches_truncates(self):
        query = compile_query(QUERY)
        series_list = self.make_series_list()
        full = TRexEngine().execute_query(query, series_list)
        limited = TRexEngine(max_matches=5).execute_query(query,
                                                          series_list)
        assert full.total_matches > 5
        assert limited.total_matches == 5
        # The limited matches are a subset of the full ones.
        full_set = set(full.all_matches())
        assert set(limited.all_matches()) <= full_set

    def test_max_matches_deterministic_across_planners(self):
        """Truncation keeps the positionally-smallest matches, so every
        planner returns the same subset despite different emission
        orders."""
        query = compile_query(QUERY)
        series_list = self.make_series_list()
        full = TRexEngine().execute_query(query, series_list)
        # Expected: walk series in order, take the sorted prefix until
        # the cross-series quota runs out.
        expected, remaining = [], 5
        for entry in full.per_series:
            take = sorted(entry.matches)[:remaining]
            expected.extend((entry.key, s, e) for s, e in take)
            remaining -= len(take)
        for planner in ("cost", "batch", "sm_left", "pr_left",
                        "sm_right", "pr_right"):
            limited = TRexEngine(optimizer=planner, max_matches=5) \
                .execute_query(query, series_list)
            assert limited.all_matches() == expected, planner

    def test_timeout_raises(self):
        query = compile_query(QUERY)
        rng = np.random.default_rng(1)
        big = [make_series(np.cumsum(rng.normal(0, 1, 2500)) + 50)]
        engine = TRexEngine(optimizer="batch", sharing="off",
                            timeout_seconds=0.05)
        with pytest.raises(QueryTimeout):
            engine.execute_query(query, big)

    def test_generous_timeout_fine(self):
        query = compile_query(QUERY)
        engine = TRexEngine(timeout_seconds=60.0)
        result = engine.execute_query(query, self.make_series_list(1, 40))
        assert result.total_matches >= 0

    def test_invalid_settings_rejected(self):
        with pytest.raises(PlanError):
            TRexEngine(timeout_seconds=0)
        with pytest.raises(PlanError):
            TRexEngine(max_matches=0)
