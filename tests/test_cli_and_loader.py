"""CLI and CSV loader tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.loader import load_csv, save_csv
from repro.errors import DataError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "prices.csv"
    path.write_text(
        "tstamp,ticker,price\n"
        "0,ACME,10.0\n"
        "1,ACME,11.5\n"
        "2,ACME,12.0\n"
        "0,OTHR,5.0\n"
        "1,OTHR,4.0\n"
        "2,OTHR,3.5\n")
    return str(path)


class TestLoader:
    def test_load_types(self, csv_file):
        table = load_csv(csv_file)
        assert table.column("price").dtype == np.float64
        assert table.column("ticker").dtype == object
        assert len(table) == 6

    def test_column_selection(self, csv_file):
        table = load_csv(csv_file, columns=["tstamp", "price"])
        assert table.column_names == ["price", "tstamp"]

    def test_missing_column(self, csv_file):
        with pytest.raises(DataError):
            load_csv(csv_file, columns=["volume"])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(str(path))

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(DataError):
            load_csv(str(path))

    def test_round_trip(self, csv_file, tmp_path):
        table = load_csv(csv_file)
        out = tmp_path / "copy.csv"
        save_csv(table, str(out))
        again = load_csv(str(out))
        assert np.allclose(again.column("price"),
                           table.column("price"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("a,b\n1,2\n\n3,4\n")
        table = load_csv(str(path))
        assert len(table) == 2


class TestCLI:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "sp500" in out and "weather" in out

    def test_templates_command(self, capsys):
        assert main(["templates"]) == 0
        out = capsys.readouterr().out
        assert "cld_wave" in out

    def test_query_with_template(self, capsys):
        code = main(["query", "--dataset", "sp500", "--template", "v_shape",
                     "--param", "down_r2_max=-0.7",
                     "--param", "up_r2_min=0.7",
                     "--param", "total_window_size=30",
                     "--series", "3", "--length", "60", "--limit", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "matches over" in out

    def test_query_with_csv(self, csv_file, capsys):
        code = main(["query", "--csv", csv_file,
                     "--query",
                     "PARTITION BY ticker ORDER BY tstamp PATTERN (UP) "
                     "DEFINE SEGMENT UP AS last(UP.price) > first(UP.price)"
                     " AND window(1, 2)",
                     "--limit", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ACME" in out

    def test_query_from_file(self, csv_file, tmp_path, capsys):
        query_path = tmp_path / "q.sql"
        query_path.write_text(
            "PARTITION BY ticker ORDER BY tstamp PATTERN (DN) "
            "DEFINE SEGMENT DN AS last(DN.price) < first(DN.price) "
            "AND window(1, :max)")
        code = main(["query", "--csv", csv_file, "--query-file",
                     str(query_path), "--param", "max=2"])
        assert code == 0
        assert "OTHR" in capsys.readouterr().out

    def test_explain_command(self, capsys):
        code = main(["explain", "--dataset", "sp500", "--template",
                     "v_shape", "--param", "down_r2_max=-0.7",
                     "--param", "up_r2_min=0.7",
                     "--param", "total_window_size=30",
                     "--series", "3", "--length", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Logical plan" in out and "Physical plan" in out

    def test_explain_analyze_command(self, capsys):
        code = main(["explain", "--analyze", "--dataset", "sp500",
                     "--template", "v_shape",
                     "--param", "down_r2_max=-0.7",
                     "--param", "up_r2_min=0.7",
                     "--param", "total_window_size=30",
                     "--series", "2", "--length", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Physical plan (analyzed)" in out
        assert "time=" in out and "self=" in out
        assert "matches over" in out

    def test_explain_analyze_json(self, capsys):
        import json
        code = main(["explain", "--analyze", "--json", "--dataset",
                     "sp500", "--template", "v_shape",
                     "--param", "down_r2_max=-0.7",
                     "--param", "up_r2_min=0.7",
                     "--param", "total_window_size=30",
                     "--series", "2", "--length", "50"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert "plan" in data and "operators" in data

    def test_json_without_analyze_rejected(self):
        with pytest.raises(SystemExit):
            main(["explain", "--json", "--dataset", "sp500",
                  "--template", "v_shape"])

    def test_bench_command(self, tmp_path, capsys):
        code = main(["bench", "--out", str(tmp_path),
                     "--series", "2", "--length", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_smoke_v_shape.json" in out

    def test_error_reported_not_raised(self, capsys):
        code = main(["query", "--dataset", "sp500",
                     "--query", "PATTERN (((", "--series", "2",
                     "--length", "30"])
        # Syntax errors map to a distinct exit code (docs/ROBUSTNESS.md).
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_missing_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "sp500"])

    def test_bad_param_rejected(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "sp500", "--template", "v_shape",
                  "--param", "oops"])
