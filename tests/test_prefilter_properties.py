"""Property tests for the symbolic index and the prefilter decision.

Two invariants proven randomly (hypothesis is optional in minimal
environments; the module skips cleanly when absent):

* every stored block bound brackets the exact block extreme, for any
  value distribution (NaN, ±inf, flat, huge dynamic range);
* a pruned region provably contains no match — every match the full
  scan finds on random data lies inside a candidate range whenever the
  prefilter narrows, and no match exists at all whenever it skips.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.extra import numpy as hnp  # noqa: E402

from repro.core.engine import TRexEngine  # noqa: E402
from repro.index.summary import _block_extremes, build_summary  # noqa: E402
from repro.lang.query import compile_query  # noqa: E402

from tests.conftest import make_series  # noqa: E402

finite_values = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.floats(min_value=-1e12, max_value=1e12,
                       allow_nan=False, allow_infinity=False))

messy_values = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.floats(allow_nan=True, allow_infinity=True,
                       width=64))


class TestBlockBoundsBracketExtremes:
    @given(values=messy_values,
           block_size=st.sampled_from([1, 3, 16, 64]))
    @settings(max_examples=120, deadline=None)
    def test_bounds_bracket_every_block(self, values, block_size):
        summary = build_summary(make_series(values), block_size)
        summary.validate(make_series(values))
        col = summary.column("val")
        exact_lo, exact_hi, empty = _block_extremes(values, block_size)
        live = ~empty
        assert np.all(col.block_lo[live] <= exact_lo[live])
        assert np.all(col.block_hi[live] >= exact_hi[live])
        assert np.array_equal(col.block_empty, empty)

    @given(values=finite_values,
           lo=st.floats(min_value=-1e12, max_value=1e12,
                        allow_nan=False),
           width=st.floats(min_value=0.0, max_value=1e12,
                           allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_excluded_blocks_have_no_witness(self, values, lo, width):
        hi = lo + width
        col = build_summary(make_series(values), 16).column("val")
        mask = col.blocks_possible(lo, hi, False, False)
        for k in np.flatnonzero(~mask):
            block = values[k * 16:(k + 1) * 16]
            assert not np.any((block >= lo) & (block <= hi))
        if not col.interval_possible(lo, hi, False, False):
            assert not np.any((values >= lo) & (values <= hi))


QUERY = compile_query("""
ORDER BY tstamp
PATTERN (A & W)
DEFINE
  SEGMENT A AS min(A.val) >= :lo and max(A.val) <= :hi,
  SEGMENT W AS window(1, 6)
""", {"lo": 60.0, "hi": 200.0})


class TestPrunedRegionsContainNoMatch:
    @given(values=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=2, max_value=260),
        elements=st.floats(min_value=-100.0, max_value=300.0,
                           allow_nan=False)))
    @settings(max_examples=80, deadline=None)
    def test_no_false_dismissal(self, values):
        series = [make_series(values)]
        off = TRexEngine(prefilter=False).execute_query(QUERY, series)
        on = TRexEngine(prefilter=True).execute_query(QUERY, series)
        assert off.matches_by_key() == on.matches_by_key()
        if on.prefilter["series_skipped"]:
            assert off.total_matches == 0

    @given(values=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=2, max_value=260),
        elements=st.one_of(
            st.just(float("nan")),
            st.floats(min_value=-100.0, max_value=300.0,
                      allow_nan=False))))
    @settings(max_examples=60, deadline=None)
    def test_no_false_dismissal_with_nans(self, values):
        series = [make_series(values)]
        off = TRexEngine(prefilter=False).execute_query(QUERY, series)
        on = TRexEngine(prefilter=True).execute_query(QUERY, series)
        assert off.matches_by_key() == on.matches_by_key()
