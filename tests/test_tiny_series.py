"""Edge cases on empty and tiny series (n in {0, 1, 2}).

The fuzzer's data generator leans hard on degenerate lengths, and several
bugs hid there (spurious matches on n=1 under WConcat, missing diagonal
matches under Kleene).  These tests pin the behaviour for every operator
family: each executor must agree with the brute-force matcher and never
raise, all the way down to the empty series.  The canonical-empty
SearchSpace introduced for n=0 is covered at the unit level too.
"""

import pytest

from repro.baselines import make_executor
from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine
from repro.lang.query import compile_query
from repro.plan.search_space import SearchSpace

from tests.conftest import make_series

FAMILY_QUERIES = {
    "leaf_segment": """
        ORDER BY tstamp
        PATTERN S
        DEFINE SEGMENT S AS avg(S.val) > 0.5
    """,
    "leaf_point": """
        ORDER BY tstamp
        PATTERN P
        DEFINE P AS P.val > 0.5
    """,
    "concat": """
        ORDER BY tstamp
        PATTERN (S P)
        DEFINE SEGMENT S AS sum(S.val) > 0.5, P AS P.val < 2
    """,
    "wconcat_pad": """
        ORDER BY tstamp
        PATTERN (S1 P2 P3)
        DEFINE SEGMENT S1 AS avg(S1.val) > 0.5, P2 AS true,
          P3 AS P3.val > 0.5
    """,
    "and_window": """
        ORDER BY tstamp
        PATTERN (S & W)
        DEFINE SEGMENT S AS count(S.val) >= 1, SEGMENT W AS window(0, 2)
    """,
    "or": """
        ORDER BY tstamp
        PATTERN (S | P)
        DEFINE SEGMENT S AS min(S.val) > 0.5, P AS P.val < 0
    """,
    "not": """
        ORDER BY tstamp
        PATTERN (S & W & ~P)
        DEFINE SEGMENT S AS max(S.val) > 0.5, SEGMENT W AS window(0, 3),
          P AS P.val < 0
    """,
    "kleene": """
        ORDER BY tstamp
        PATTERN ((S)+)
        DEFINE SEGMENT S AS last(S.val) >= first(S.val)
    """,
    "cross_ref": """
        ORDER BY tstamp
        PATTERN (S1 S2)
        DEFINE SEGMENT S1 AS last(S1.val) > first(S2.val),
          SEGMENT S2 AS count(S2.val) >= 1
    """,
}

TINY_SERIES = {
    0: [],
    1: [1.0],
    2: [1.0, 0.0],
}

ENGINE_BACKENDS = ("cost", "pr_left", "sm_right")
BASELINE_LABELS = ("trex-batch", "zstream", "opencep")


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
@pytest.mark.parametrize("n", sorted(TINY_SERIES))
def test_families_agree_on_tiny_series(family, n):
    query = compile_query(FAMILY_QUERIES[family])
    series = make_series(TINY_SERIES[n])
    expected = sorted(BruteForceMatcher(query).match_series(series))
    if n == 0:
        assert expected == []
    for optimizer in ENGINE_BACKENDS:
        engine = TRexEngine(optimizer=optimizer)
        result = engine.execute_query(query, [series])
        assert sorted(result.per_series[0].matches) == expected, \
            f"{family} n={n} optimizer={optimizer}"
    for label in BASELINE_LABELS:
        executor = make_executor(label, query)
        assert sorted(executor.match_series(series)) == expected, \
            f"{family} n={n} baseline={label}"


@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
def test_families_survive_all_nan_singleton(family):
    query = compile_query(FAMILY_QUERIES[family])
    series = make_series([float("nan")])
    expected = sorted(BruteForceMatcher(query).match_series(series))
    engine = TRexEngine(optimizer="cost")
    result = engine.execute_query(query, [series])
    assert sorted(result.per_series[0].matches) == expected


class TestCanonicalEmptySpace:
    def test_full_zero_is_canonical_empty(self):
        assert SearchSpace.full(0) is SearchSpace.empty()
        assert SearchSpace.full(-3) is SearchSpace.empty()
        assert SearchSpace.full(0).is_empty()

    def test_clamp_zero_is_canonical_empty(self):
        assert SearchSpace.full(10).clamp(0) is SearchSpace.empty()
        assert SearchSpace(2, 8, 3, 9).clamp(-1) is SearchSpace.empty()

    def test_clamp_normalizes_any_empty_result(self):
        # A space entirely past the series end clamps to the canonical
        # empty value, not to arbitrary leftover bounds.
        clamped = SearchSpace(5, 9, 5, 9).clamp(3)
        assert clamped is SearchSpace.empty()
        assert (clamped.s_lo, clamped.s_hi) == (0, -1)

    def test_empty_space_range_arithmetic_stays_sane(self):
        empty = SearchSpace.empty()
        assert empty.start_range_size == 0
        assert empty.end_range_size == 0
        assert empty.span_size == 0
        assert not empty.contains(0, 0)
        left = empty.concat_left(1)
        assert left.is_empty()

    def test_nonempty_clamp_unchanged(self):
        sp = SearchSpace(1, 4, 2, 5).clamp(10)
        assert (sp.s_lo, sp.s_hi, sp.e_lo, sp.e_hi) == (1, 4, 2, 5)


class TestLoaderAndCliTiny:
    def _write_csv(self, tmp_path, rows):
        path = tmp_path / "tiny.csv"
        path.write_text("tstamp,val\n" + "".join(f"{t},{v}\n"
                                                 for t, v in rows))
        return str(path)

    def test_load_csv_header_only(self, tmp_path):
        from repro.datasets.loader import load_csv
        table = load_csv(self._write_csv(tmp_path, []))
        series_list = table.partition(None, "tstamp")
        assert len(series_list) in (0, 1)
        if series_list:
            assert len(series_list[0]) == 0

    def test_cli_query_single_row(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write_csv(tmp_path, [(0, 1.0)])
        code = main(["query", "--csv", path, "--query",
                     "ORDER BY tstamp PATTERN S "
                     "DEFINE SEGMENT S AS avg(S.val) > 0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 match" in out or "[0, 0]" in out or "matches" in out

    def test_cli_query_single_row_no_match(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write_csv(tmp_path, [(0, 0.0)])
        code = main(["query", "--csv", path, "--query",
                     "ORDER BY tstamp PATTERN S "
                     "DEFINE SEGMENT S AS avg(S.val) > 0.5"])
        assert code == 0
