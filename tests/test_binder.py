"""Binder tests: window interpretation, defaults, validation."""

import pytest

from repro.errors import BindError
from repro.lang.query import compile_query


def bind(text, params=None):
    return compile_query(text, params)


class TestWindowInterpretation:
    def test_point_range(self):
        q = bind("ORDER BY t\nPATTERN (X)\nDEFINE SEGMENT X AS window(1, 5)")
        (window,) = q.var("X").windows
        assert (window.kind, window.lo, window.hi) == ("point", 1.0, 5.0)

    def test_point_fixed(self):
        q = bind("ORDER BY t\nPATTERN (X)\nDEFINE SEGMENT X AS window(4)")
        (window,) = q.var("X").windows
        assert (window.lo, window.hi) == (4.0, 4.0)

    def test_point_unbounded(self):
        q = bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(15, null)")
        (window,) = q.var("X").windows
        assert window.hi is None

    def test_wild(self):
        q = bind("ORDER BY t\nPATTERN (X)\nDEFINE SEGMENT X AS window()")
        (window,) = q.var("X").windows
        assert window.is_wild

    def test_time_range(self):
        q = bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(t, 25, 30, DAY)")
        (window,) = q.var("X").windows
        assert (window.kind, window.column, window.unit) == \
            ("time", "t", "DAY")

    def test_time_fixed(self):
        q = bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(t, 10, MINUTE)")
        (window,) = q.var("X").windows
        assert (window.lo, window.hi) == (10.0, 10.0)

    def test_window_with_condition(self):
        q = bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(1, 5) AND last(X.v) > 0")
        var = q.var("X")
        assert len(var.windows) == 1
        assert var.condition is not None

    def test_window_param_bounds(self):
        q = bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(1, :hi)", {"hi": 9})
        (window,) = q.var("X").windows
        assert window.hi == 9.0

    def test_nested_window_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(1, 5) OR last(X.v) > 0")

    def test_window_on_point_var_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (X)\nDEFINE X AS window(1, 5)")

    def test_bad_unit_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (X)\n"
                 "DEFINE SEGMENT X AS window(t, 1, 5, LIGHTYEAR)")

    def test_unbounded_fixed_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (X)\nDEFINE SEGMENT X AS window(null)")


class TestValidation:
    def test_undefined_pattern_var_defaults_to_point(self):
        q = bind("ORDER BY t\nPATTERN (A B)\nDEFINE A AS v < 1")
        assert not q.var("B").is_segment
        assert q.var("B").condition is None

    def test_define_without_pattern_var_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (A)\nDEFINE A AS true, B AS true")

    def test_duplicate_define_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (A)\nDEFINE A AS true, A AS false")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(Exception):
            bind("ORDER BY t\nPATTERN (A)\n"
                 "DEFINE SEGMENT A AS no_such_agg(A.v) > 1")

    def test_aggregate_arity_checked(self):
        with pytest.raises(Exception):
            bind("ORDER BY t\nPATTERN (A)\n"
                 "DEFINE SEGMENT A AS linear_reg_r2(A.v) > 0.5")

    def test_unknown_reference_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (A)\n"
                 "DEFINE SEGMENT A AS corr(A.v, GHOST.v) > 0.5")

    def test_missing_param_rejected(self):
        with pytest.raises(BindError):
            bind("ORDER BY t\nPATTERN (A)\nDEFINE SEGMENT A AS last(A.v) > :x")

    def test_missing_order_by_rejected(self):
        with pytest.raises(BindError):
            bind("PATTERN (A)\nDEFINE A AS true")

    def test_external_refs_computed(self):
        q = bind("ORDER BY t\nPATTERN (UP GAP X)\nDEFINE SEGMENT UP AS "
                 "last(UP.v) > 1, SEGMENT GAP AS true, "
                 "SEGMENT X AS corr(X.v, UP.v) > 0.5")
        assert q.var("X").external_refs == frozenset({"UP"})
        assert q.referenced_variables() == frozenset({"UP"})

    def test_true_condition_becomes_none(self):
        q = bind("ORDER BY t\nPATTERN (W)\nDEFINE SEGMENT W AS true")
        assert q.var("W").condition is None
        assert q.var("W").is_wild

    def test_has_segment_variables(self):
        q = bind("ORDER BY t\nPATTERN (A B)\nDEFINE A AS v < 1")
        assert not q.has_segment_variables(q.pattern)
        q2 = bind("ORDER BY t\nPATTERN (A B)\nDEFINE SEGMENT A AS true")
        assert q2.has_segment_variables(q2.pattern)

    def test_describe_smoke(self):
        q = bind("ORDER BY t\nPATTERN (A)\nDEFINE SEGMENT A AS window(1, 2)")
        assert "PATTERN" in q.describe()
