"""Property tests on plan rewrites and executor invariants.

* Window push-down is a pure optimization: disabling it never changes the
  match set.
* Sub-pattern memoization never changes results.
* Probe plans and batch plans are result-equivalent (pruning is safe).
* The logical plan's duration bounds are sound: every brute-force match
  respects them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine
from repro.lang.query import compile_query
from repro.optimizer import costmodel as CM
from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy
from repro.plan.logical import build_logical_plan
from repro.plan.search_space import SearchSpace

from tests.conftest import make_series

QUERIES = {
    "concat": """
        ORDER BY tstamp
        PATTERN (DN UP) & WINDOW
        DEFINE SEGMENT DN AS last(DN.val) < first(DN.val),
          SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT WINDOW AS window(2, 8)
    """,
    "padded": """
        ORDER BY tstamp
        PATTERN (W (S & W2) W) & WINDOW
        DEFINE SEGMENT W AS true, SEGMENT W2 AS window(1, 3),
          SEGMENT S AS last(S.val) - first(S.val) < -1,
          SEGMENT WINDOW AS window(5, 12)
    """,
    "kleene": """
        ORDER BY tstamp
        PATTERN ((UP & W)+) & WINDOW
        DEFINE SEGMENT W AS window(1, 3),
          SEGMENT UP AS last(UP.val) > first(UP.val),
          SEGMENT WINDOW AS window(2, 9)
    """,
}


def random_series(seed, n=22):
    rng = np.random.default_rng(seed)
    return make_series(np.cumsum(rng.normal(0, 1, n)) + 30)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), name=st.sampled_from(sorted(QUERIES)))
def test_window_pushdown_preserves_matches(seed, name):
    query = compile_query(QUERIES[name])
    series = random_series(seed)
    pushed = build_logical_plan(query, push_windows=True)
    unpushed = build_logical_plan(query, push_windows=False)
    planner = RuleBasedPlanner(RuleStrategy("left", "sm"))
    engine = TRexEngine()
    with_push = engine._run_plan(planner.plan(query, pushed), series,
                                 query)[0]
    without_push = engine._run_plan(planner.plan(query, unpushed), series,
                                    query)[0]
    assert with_push == without_push


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), name=st.sampled_from(sorted(QUERIES)))
def test_probe_and_batch_equivalent(seed, name):
    query = compile_query(QUERIES[name])
    series = random_series(seed)
    probes = TRexEngine(optimizer="cost").execute_query(
        query, [series]).per_series[0].matches
    batch = TRexEngine(optimizer="batch").execute_query(
        query, [series]).per_series[0].matches
    assert probes == batch


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_duration_bounds_sound(seed):
    query = compile_query(QUERIES["padded"])
    series = random_series(seed)
    plan = build_logical_plan(query)
    lo, hi = CM.node_duration_bounds(plan, series)
    for start, end in BruteForceMatcher(query, plan).match_series(series):
        assert lo <= end - start <= hi


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000),
       s_lo=st.integers(0, 10), s_width=st.integers(0, 10),
       e_lo=st.integers(0, 15), e_width=st.integers(0, 6))
def test_search_space_restriction_is_exact_subset(seed, s_lo, s_width,
                                                  e_lo, e_width):
    """Evaluating under a restricted space returns exactly the full-space
    matches falling inside it (no false pruning, no leakage)."""
    query = compile_query(QUERIES["concat"])
    series = random_series(seed)
    plan = RuleBasedPlanner(RuleStrategy("left", "probe")).plan(query)
    from repro.exec.base import ExecContext
    full = {seg.bounds for seg in plan.eval(
        ExecContext(series), SearchSpace.full(len(series)), {})}
    sp = SearchSpace(s_lo, s_lo + s_width, e_lo, e_lo + e_width)
    restricted = {seg.bounds for seg in plan.eval(
        ExecContext(series), sp, {})}
    expected = {(s, e) for s, e in full if sp.contains(s, e)}
    assert restricted == expected
