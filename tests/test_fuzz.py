"""Tests for the differential fuzzer itself (src/repro/testing/fuzz.py).

The fuzzer is test infrastructure, so it gets its own tests: generator
determinism and coverage, oracle wiring (a lying backend must be caught),
metamorphic relations on a known query, minimizer convergence and
determinism against a planted oracle, and corpus serialization
round-trips.  tests/test_fuzz_corpus.py replays the committed reproducers.
"""

import math
import random

from repro.lang.query import compile_query
from repro.testing import fuzz
from repro.testing.fuzz import (BACKENDS, CORE_BACKENDS, QueryGen, SNode,
                                SVar, SeriesGen, case_name,
                                case_to_json, decode_values, encode_values,
                                metamorphic_check, minimize_case,
                                oracle_check, render_query, replay_case,
                                run_fuzz, spec_size)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def _specs(seed, count, max_nodes=6):
    gen = QueryGen(random.Random(seed), max_nodes=max_nodes)
    return [gen.generate() for _ in range(count)]


def test_query_generator_deterministic():
    first = [render_query(s) for s in _specs(7, 25)]
    second = [render_query(s) for s in _specs(7, 25)]
    assert first == second


def test_query_generator_seeds_differ():
    assert ([render_query(s) for s in _specs(0, 10)]
            != [render_query(s) for s in _specs(1, 10)])


def test_generated_queries_mostly_compile():
    specs = _specs(3, 60)
    compiled = [s for s in specs if fuzz._compiles(s) is not None]
    # The generator aims all of its output at the accepted surface; allow
    # a small slack for windows the binder rejects.
    assert len(compiled) >= 54


def test_generator_covers_the_grammar():
    specs = _specs(11, 150)
    kinds = set()
    conds = []
    for spec in specs:
        stack = [spec]
        while stack:
            node = stack.pop()
            if isinstance(node, SNode):
                kinds.add(node.kind)
                stack.extend(node.parts)
            else:
                conds.append(node.cond)
    assert {"concat", "and", "or", "not", "kleene"} <= kinds
    text = " ".join(conds)
    assert "window(" in text
    assert "first(" in text and "last(" in text
    for agg in ("sum", "avg", "stddev", "count"):
        assert f"{agg}(" in text


def test_series_generator_deterministic_and_edge_lengths():
    gen = SeriesGen(random.Random(5))
    draws = [gen.generate() for _ in range(300)]
    lengths = {len(values) for _tstamps, values in draws}
    assert {0, 1, 2} <= lengths
    gen2 = SeriesGen(random.Random(5))
    assert draws == [gen2.generate() for _ in range(300)]
    for tstamps, _values in draws:
        assert all(type(t) is float for t in tstamps)
        assert tstamps == sorted(tstamps)


# ---------------------------------------------------------------------------
# Oracle wiring
# ---------------------------------------------------------------------------

_SIMPLE = ("ORDER BY tstamp\nPATTERN S\n"
           "DEFINE SEGMENT S AS avg(S.val) > 0.5")


def test_oracle_check_clean_on_agreeing_backends():
    query = compile_query(_SIMPLE)
    discs = oracle_check(query, _SIMPLE, [0.0, 1.0, 2.0], [1.0, 0.0, 1.0],
                         backends=list(BACKENDS.keys()))
    assert discs == []


def test_oracle_check_catches_lying_backend(monkeypatch):
    monkeypatch.setitem(BACKENDS, "liar", lambda query, series: ((0, 0),))
    query = compile_query(_SIMPLE)
    discs = oracle_check(query, _SIMPLE, [0.0, 1.0], [0.0, 0.0],
                         backends=["liar"])
    assert len(discs) == 1
    assert discs[0].backend == "liar"
    assert "extra=[(0, 0)]" in discs[0].detail


def test_oracle_check_reports_crashing_backend(monkeypatch):
    def crash(query, series):
        raise ValueError("boom")

    monkeypatch.setitem(BACKENDS, "crasher", crash)
    query = compile_query(_SIMPLE)
    discs = oracle_check(query, _SIMPLE, [0.0, 1.0], [1.0, 1.0],
                         backends=["crasher"])
    assert len(discs) == 1
    assert "ValueError" in discs[0].detail


def test_oracle_check_empty_series():
    query = compile_query(_SIMPLE)
    assert oracle_check(query, _SIMPLE, [], [],
                        backends=list(CORE_BACKENDS)) == []


# ---------------------------------------------------------------------------
# Metamorphic relations
# ---------------------------------------------------------------------------

def test_metamorphic_clean_on_simple_segment_query():
    spec = SVar("S1", True, "avg(S1.val) > 0.5")
    tstamps = [0.0, 1.0, 2.0, 3.0]
    values = [1.0, 0.0, 1.0, 1.0]
    assert metamorphic_check(spec, tstamps, values) == []


def test_metamorphic_clean_on_or_and_kleene():
    left = SVar("S1", True, "sum(S1.val) > 0.4921875")
    right = SVar("P2", False, "P2.val < 0")
    spec = SNode("or", [left, right])
    assert metamorphic_check(spec, [0.0, 1.0, 2.0], [1.0, -1.0, 2.0]) == []
    spec = SNode("kleene", [SVar("S1", True, "last(S1.val) > first(S1.val)")],
                 quant="+")
    assert metamorphic_check(spec, [0.0, 1.0, 2.0], [0.0, 1.0, 2.0]) == []


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------

def _planted_spec():
    """A deliberately bloated spec whose failure only needs one leaf."""
    culprit = SVar("S1", True, "stddev(S1.val) > 0.2578125")
    noise_a = SVar("P2", False, "P2.val < 8")
    noise_b = SVar("S3", True, "count(S3.val) >= 1")
    return SNode("concat", [noise_a, SNode("and", [culprit, noise_b])])


def _planted_oracle(spec, tstamps, values):
    """Planted bug: fails whenever a stddev condition sees >= 3 points."""
    text = fuzz._compiles(spec)
    if text is None:
        return False
    return "stddev(" in text and len(values) >= 3


def test_minimizer_converges_to_minimal_case():
    tstamps = [float(i) for i in range(8)]
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    spec, min_t, min_v = minimize_case(_planted_spec(), tstamps, values,
                                       _planted_oracle)
    assert spec_size(spec) == 1
    assert isinstance(spec, SVar) and "stddev(" in spec.cond
    assert len(min_v) == 3
    assert _planted_oracle(spec, min_t, min_v)


def test_minimizer_deterministic():
    tstamps = [float(i) for i in range(8)]
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    runs = [minimize_case(_planted_spec(), tstamps, values, _planted_oracle)
            for _ in range(2)]
    assert render_query(runs[0][0]) == render_query(runs[1][0])
    assert runs[0][1:] == runs[1][1:]


def test_minimizer_never_returns_noncompiling_spec():
    spec, _t, _v = minimize_case(_planted_spec(), [0.0, 1.0, 2.0],
                                 [1.0, 2.0, 3.0], _planted_oracle)
    assert fuzz._compiles(spec) is not None


# ---------------------------------------------------------------------------
# Corpus serialization
# ---------------------------------------------------------------------------

def test_encode_decode_nonfinite_roundtrip():
    values = [1.0, float("nan"), float("inf"), float("-inf"), -2.5]
    encoded = encode_values(values)
    assert encoded[1:4] == ["nan", "inf", "-inf"]
    decoded = decode_values(encoded)
    assert decoded[0] == 1.0 and decoded[4] == -2.5
    assert math.isnan(decoded[1])
    assert decoded[2] == float("inf") and decoded[3] == float("-inf")


def test_case_roundtrip_and_stable_name():
    case = case_to_json(_SIMPLE, [0.0, 1.0], [1.0, float("nan")],
                        "oracle", "demo", seed=3)
    name = case_name(case)
    assert name.startswith("oracle_") and name.endswith(".json")
    assert case_name(case) == name  # stable
    assert replay_case(case, backends=list(CORE_BACKENDS)) == []


def test_corpus_replay_catches_reintroduced_bug(monkeypatch):
    """A corpus case must fail loudly if a fixed bug comes back."""
    case = case_to_json(_SIMPLE, [0.0, 1.0], [1.0, 1.0], "oracle", "demo")

    def buggy(query, series):  # drops single-point matches again
        good = BACKENDS["trex:cost:on"](query, series)
        return tuple(m for m in good if m[0] != m[1])

    monkeypatch.setitem(BACKENDS, "trex:cost:auto", buggy)
    discs = replay_case(case, backends=["trex:cost:auto"])
    assert len(discs) == 1 and "missing=" in discs[0].detail


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

def test_run_fuzz_small_campaign_clean():
    report = run_fuzz(queries=6, seed=123, series_per_query=2)
    # series_per_query plus the extra NaN/tiny-biased series for the
    # scalar/vector boundary (docs/VECTORIZATION.md) and the extra
    # multi-block series for the prefilter skip/narrow boundary
    # (docs/PREFILTER.md) that each query gets.
    assert report.cases_checked == 24
    assert report.discrepancies == []
    assert report.queries_rejected == 0
    payload = report.to_dict()
    assert payload["oracle_checks"] == report.oracle_checks
    assert payload["discrepancies"] == []


def test_run_fuzz_minimizes_planted_failure(monkeypatch):
    """End to end: a lying backend's failure comes back minimized."""
    real = BACKENDS["trex:cost:on"]

    def liar(query, series):
        good = real(query, series)
        if len(series) >= 2:
            return tuple(good) + ((0, len(series) - 1),) \
                if (0, len(series) - 1) not in good else good
        return good

    monkeypatch.setitem(BACKENDS, "trex:cost:auto", liar)
    report = run_fuzz(queries=4, seed=9, series_per_query=2)
    assert report.discrepancies
    assert report.minimized
    for case in report.minimized:
        assert set(case) >= {"query", "series", "kind", "detail"}
        lengths = {len(case["series"]["tstamp"]),
                   len(case["series"]["val"])}
        assert len(lengths) == 1  # columns stay aligned
