"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.series import Series
from repro.timeseries.table import Table


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_series(values, timestamps=None, extra=None, time_unit="DAY",
                key=("s",)):
    """Build a one-column test series with a ``val`` column."""
    values = np.asarray(values, dtype=np.float64)
    if timestamps is None:
        timestamps = np.arange(float(len(values)))
    columns = {"tstamp": timestamps, "val": values}
    if extra:
        columns.update(extra)
    return Series(columns, "tstamp", key=key, time_unit=time_unit)


@pytest.fixture
def walk_series(rng):
    """A 40-point random-walk series."""
    return make_series(np.cumsum(rng.normal(0, 1.0, 40)) + 50)


@pytest.fixture
def vee_series():
    """A deterministic 13-point series with a V shape."""
    return make_series([1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5])


@pytest.fixture
def assert_lint_clean():
    """Assert a query text has no static-analysis findings.

    Usage: ``assert_lint_clean(text, params)`` — fails the test with the
    formatted diagnostics when the analyzer reports anything.
    """
    from repro.analysis import lint_text

    def check(text, params=None, registry=None):
        kwargs = {} if registry is None else {"registry": registry}
        diags = lint_text(text, params, **kwargs)
        assert not diags, "query is not lint-clean:\n" + "\n".join(
            diag.format() for diag in diags)

    return check


@pytest.fixture
def small_table(rng):
    """Two-ticker table of 30 daily prices each."""
    n = 30
    rows_t = np.concatenate([np.arange(float(n)), np.arange(float(n))])
    tickers = np.asarray(["A"] * n + ["B"] * n, dtype=object)
    prices = np.concatenate([
        50 + np.cumsum(rng.normal(0, 1, n)),
        80 + np.cumsum(rng.normal(0, 1, n)),
    ])
    return Table({"tstamp": rows_t, "ticker": tickers, "price": prices},
                 time_unit="DAY")
