"""Tokenizer tests."""

import pytest

from repro.errors import QuerySyntaxError
from repro.lang.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text) if t.kind != "eof"]


class TestBasics:
    def test_identifiers_and_keywords(self):
        tokens = kinds("PATTERN foo Bar DEFINE")
        assert tokens == [("keyword", "PATTERN"), ("ident", "foo"),
                          ("ident", "Bar"), ("keyword", "DEFINE")]

    def test_keywords_case_insensitive(self):
        assert kinds("define")[0][0] == "keyword"
        assert kinds("Segment")[0][0] == "keyword"

    def test_numbers(self):
        assert kinds("1 2.5 0.95 1e3 2.5e-2") == [
            ("number", "1"), ("number", "2.5"), ("number", "0.95"),
            ("number", "1e3"), ("number", "2.5e-2")]

    def test_number_then_dot_ident(self):
        # "1." followed by an identifier must not swallow the dot.
        tokens = kinds("A1.price")
        assert tokens == [("ident", "A1"), ("op", "."), ("ident", "price")]

    def test_params(self):
        assert kinds(":alpha :x_1") == [("param", "alpha"), ("param", "x_1")]

    def test_strings(self):
        assert kinds("'GOOG'") == [("string", "GOOG")]

    def test_string_escaped_quote(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    def test_multi_char_operators(self):
        assert [t for _, t in kinds("<= >= != <> ==")] == [
            "<=", ">=", "!=", "<>", "=="]

    def test_single_char_operators(self):
        assert [t for _, t in kinds("( ) { } & | ~ * + ? = < > - /")] == [
            "(", ")", "{", "}", "&", "|", "~", "*", "+", "?", "=", "<",
            ">", "-", "/"]

    def test_comments_skipped(self):
        assert kinds("a -- comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a @ b")

    def test_positions(self):
        tokens = tokenize("a\n  bb")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_underscore_identifiers(self):
        assert kinds("_x a_b_c") == [("ident", "_x"), ("ident", "a_b_c")]
