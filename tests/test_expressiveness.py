"""Appendix A (Lemma A.1) tests: special-pattern reduction equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import BruteForceMatcher
from repro.errors import PlanError
from repro.lang.expressiveness import (enumerate_special_patterns,
                                       matches_via_special_patterns)
from repro.lang.query import compile_query

from tests.conftest import make_series


_DEFINES = {"A": "A AS val > 0", "B": "B AS val < 0", "C": "C AS val = 0"}


def point_query(pattern_text):
    used = [name for name in ("A", "B", "C") if name in pattern_text]
    defines = ", ".join(_DEFINES[name] for name in used)
    return compile_query(
        f"ORDER BY tstamp\nPATTERN ({pattern_text})\nDEFINE {defines}")


class TestEnumeration:
    def test_single_variable(self):
        query = point_query("A")
        assert enumerate_special_patterns(query.pattern, query, 5) == \
            [("A",)]

    def test_concatenation(self):
        query = point_query("A B")
        assert enumerate_special_patterns(query.pattern, query, 5) == \
            [("A", "B")]

    def test_alternation(self):
        query = point_query("A | B C")
        specials = enumerate_special_patterns(query.pattern, query, 5)
        assert ("A",) in specials and ("B", "C") in specials

    def test_kleene_bounded_by_length(self):
        query = point_query("A+")
        specials = enumerate_special_patterns(query.pattern, query, 3)
        assert specials == [("A",), ("A", "A"), ("A", "A", "A")]

    def test_kleene_star_includes_empty_extension(self):
        query = point_query("A* B")
        specials = enumerate_special_patterns(query.pattern, query, 3)
        assert ("B",) in specials
        assert ("A", "B") in specials
        assert ("A", "A", "B") in specials

    def test_optional(self):
        query = point_query("A? B")
        specials = enumerate_special_patterns(query.pattern, query, 4)
        assert specials == [("A", "B"), ("B",)]

    def test_nested(self):
        query = point_query("(A | B){2}")
        specials = enumerate_special_patterns(query.pattern, query, 4)
        assert len(specials) == 4  # AA AB BA BB

    def test_segment_variable_rejected(self):
        query = compile_query(
            "ORDER BY tstamp\nPATTERN (S)\n"
            "DEFINE SEGMENT S AS last(S.val) > 0")
        with pytest.raises(PlanError):
            enumerate_special_patterns(query.pattern, query, 5)

    def test_and_rejected(self):
        query = point_query("A & B")
        with pytest.raises(PlanError):
            enumerate_special_patterns(query.pattern, query, 5)


class TestEquivalence:
    """Lemma A.1, executably: the special-pattern alternation matches the
    same segments as the original pattern."""

    PATTERNS = ["A B", "A | B", "A+", "A? B", "A B+ C?", "(A B)+",
                "(A | B) C", "A{1,3}"]

    @pytest.mark.parametrize("pattern_text", PATTERNS)
    def test_agrees_with_bruteforce(self, pattern_text):
        query = point_query(pattern_text)
        rng = np.random.default_rng(42)
        series = make_series(rng.choice([-1.0, 0.0, 1.0], size=12))
        expected = BruteForceMatcher(query).match_series(series)
        via_specials = matches_via_special_patterns(query.pattern, query,
                                                    series)
        assert via_specials == expected

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 9999),
           pattern_text=st.sampled_from(PATTERNS))
    def test_fuzz_equivalence(self, seed, pattern_text):
        query = point_query(pattern_text)
        rng = np.random.default_rng(seed)
        series = make_series(rng.choice([-1.0, 0.0, 1.0], size=9))
        expected = BruteForceMatcher(query).match_series(series)
        assert matches_via_special_patterns(query.pattern, query,
                                            series) == expected
