"""Chaos behaviour of the service + the satellite robustness paths.

Covers the fault-injected service flows (worker-crash-then-retry,
admission faults, breaker trips under planner fault storms, a small
in-process chaos-load burst), the hardened CSV loader, and the CLI
KeyboardInterrupt contract (exit code 130 with settled partial
results).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.datasets.loader import load_csv
from repro.errors import EXIT_INTERRUPTED, DataError
from repro.lang.query import compile_query
from repro.service import (BackgroundService, BreakerConfig, LoadgenConfig,
                           RetryConfig, ServiceConfig, check_report,
                           run_self_hosted)
from repro.testing import faults
from repro.timeseries.table import Table


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def _service_config(**kwargs) -> ServiceConfig:
    defaults = dict(port=0, datasets=(("sp500", 3, 80),), workers=2)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


# ---------------------------------------------------------------------------
# Transient worker crashes: retried, byte-identical
# ---------------------------------------------------------------------------

class TestWorkerCrashRetry:
    def test_retry_succeeds_byte_identically(self):
        with BackgroundService(_service_config()) as live:
            _, clean = live.client().post(
                "/query", {"template": "v_shape"})
        faults.install_from_env("service.worker:worker*1")
        with BackgroundService(_service_config()) as live:
            status, crashed = live.client().post(
                "/query", {"template": "v_shape"})
            stats = live.service.stats()
        assert status == 200
        assert crashed["meta"]["attempts"] == 2
        assert crashed["meta"]["retried"] is True
        assert crashed["matches"] == clean["matches"]
        assert crashed["total_matches"] == clean["total_matches"]
        counters = stats["service"]["counters"]
        assert counters["retries"] == 1
        assert counters["retry_success"] == 1

    def test_exhausted_retries_surface_structured(self):
        # Every attempt crashes: the final response is still a
        # structured execution error, not a hung or dropped request.
        faults.install_from_env("service.worker:worker")
        config = _service_config(retry=RetryConfig(
            max_attempts=2, base_delay_seconds=0.01))
        with BackgroundService(config) as live:
            status, body = live.client().post(
                "/query", {"template": "v_shape"})
            stats = live.service.stats()
        assert status == 500
        assert body["error"]["type"] == "WorkerCrashed"
        assert body["error"]["kind"] == "execution"
        assert stats["service"]["counters"]["retry_exhausted"] == 1

    def test_retry_counts_against_deadline(self):
        # The per-request deadline spans all attempts: a crash-looped
        # request with a tiny deadline times out instead of spinning.
        faults.install_from_env("service.worker:worker")
        config = _service_config(retry=RetryConfig(
            max_attempts=3, base_delay_seconds=0.2))
        with BackgroundService(config) as live:
            status, body = live.client().post(
                "/query", {"template": "v_shape",
                           "timeout_seconds": 0.05})
        assert status in (408, 500)
        assert body["error"]["kind"] in ("timeout", "execution")


class TestAdmissionFault:
    def test_injected_admission_fault_is_structured_429(self):
        faults.install_from_env("service.admission:raise@1*2")
        with BackgroundService(_service_config()) as live:
            client = live.client()
            first = client.post("/query", {"template": "v_shape"})
            second = client.post("/query", {"template": "v_shape"})
            third = client.post("/query", {"template": "v_shape"})
            stats = live.service.stats()
        assert first[0] == 429 and second[0] == 429
        assert first[1]["error"]["type"] == "AdmissionRejected"
        assert third[0] == 200  # *2 cap: fault clears, service recovers
        assert stats["tenants"]["default"]["rejected_injected"] == 2


class TestBreakerUnderPlannerStorm:
    def test_planner_fault_storm_trips_breaker(self):
        faults.install_from_env("planner.dp:raise")
        config = _service_config(breaker=BreakerConfig(
            fallback_threshold=3, window_seconds=60.0,
            cooldown_seconds=60.0))
        with BackgroundService(config) as live:
            client = live.client()
            responses = [client.post("/query", {"template": "v_shape",
                                                "params": {}})
                         for _ in range(5)]
            stats = live.service.stats()
        assert all(status == 200 for status, _ in responses)
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["trips"] == 1
        assert stats["breaker"]["forced_planner"] == "pr_left"
        assert stats["service"]["counters"]["breaker_trips"] == 1
        # Once open, queries plan directly with the rule strategy and
        # stop reporting fallbacks.
        late = [body["meta"]["planner"] for _, body in responses[-2:]]
        assert late == ["pr_left", "pr_left"]


class TestChaosLoadBurst:
    def test_fault_injected_burst_has_only_structured_errors(self):
        report = run_self_hosted(
            LoadgenConfig(clients=8, requests_per_client=3,
                          templates=("v_shape",), seed=11),
            faults="service.worker:worker@3*2")
        assert report.requests == 24
        assert report.unstructured_errors == 0
        assert report.retried_requests >= 1
        assert check_report(report, expect_retries=True) == []
        counters = report.stats["service"]["counters"]
        assert counters["requests"] == counters.get("completed", 0) + \
            counters.get("failed", 0)


# ---------------------------------------------------------------------------
# Satellite: hardened CSV loader
# ---------------------------------------------------------------------------

class TestLoaderHardening:
    def _write(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return str(path)

    def test_mixed_column_reports_file_and_row(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "1,A,10\n2,A,oops\n3,A,12\n")
        with pytest.raises(DataError) as excinfo:
            load_csv(path)
        message = str(excinfo.value)
        assert f"{path}:3" in message
        assert "price" in message and "oops" in message
        assert excinfo.value.row == 3
        assert excinfo.value.source == path

    def test_ragged_row_too_few_cells(self, tmp_path):
        path = self._write(tmp_path, "a,b,c\n1,2,3\n4,5\n")
        with pytest.raises(DataError, match=r"expected 3 cells, got 2"):
            load_csv(path)

    def test_ragged_row_too_many_cells(self, tmp_path):
        path = self._write(tmp_path, "a,b\n1,2\n3,4,5\n")
        with pytest.raises(DataError, match=r"expected 2 cells, got 3"):
            load_csv(path)

    def test_duplicate_timestamp_with_grouping(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "1,A,10\n2,A,11\n2,A,12\n")
        with pytest.raises(DataError) as excinfo:
            load_csv(path, time_column="tstamp", group_by=["ticker"])
        assert "duplicate timestamp" in str(excinfo.value)
        assert excinfo.value.row == 4

    def test_non_monotonic_timestamp(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "5,A,10\n3,A,11\n")
        with pytest.raises(DataError) as excinfo:
            load_csv(path, time_column="tstamp", group_by=["ticker"])
        assert "non-monotonic" in str(excinfo.value)

    def test_duplicates_across_groups_are_fine(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "1,A,10\n2,A,11\n1,B,5\n2,B,6\n")
        table = load_csv(path, time_column="tstamp", group_by=["ticker"])
        assert len(table.partition(["ticker"], "tstamp")) == 2

    def test_missing_timestamp_cell(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "1,A,10\n,A,11\n")
        with pytest.raises(DataError) as excinfo:
            load_csv(path, time_column="tstamp", group_by=["ticker"])
        assert "missing" in str(excinfo.value).lower()

    def test_empty_numeric_cells_stay_nan(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "1,A,10\n2,A,\n3,A,12\n")
        table = load_csv(path)
        price = table.column("price")
        assert np.isnan(price[1])
        assert price[0] == 10.0

    def test_clean_csv_still_loads(self, tmp_path):
        path = self._write(tmp_path,
                           "tstamp,ticker,price\n"
                           "1,A,10\n2,A,11\n3,A,12\n")
        table = load_csv(path, time_column="tstamp", group_by=["ticker"])
        assert len(table.column("price")) == 3


# ---------------------------------------------------------------------------
# Satellite: KeyboardInterrupt settlement + exit code 130
# ---------------------------------------------------------------------------

QUERY = ("PARTITION BY t ORDER BY ts PATTERN (DN UP) & WIN DEFINE "
         "SEGMENT DN AS last(DN.v) < first(DN.v), "
         "SEGMENT UP AS last(UP.v) > first(UP.v), "
         "SEGMENT WIN AS window(2, 6)")


def _two_series_table() -> Table:
    return Table({
        "ts": np.array(list(range(10)) * 2, dtype=float),
        "t": np.array(["A"] * 10 + ["B"] * 10),
        "v": np.array([10, 12, 11, 9, 8, 10, 12, 13, 11, 10] * 2,
                      dtype=float),
    })


def _arm_interrupt(on_hit: int) -> None:
    def boom(value):
        raise KeyboardInterrupt
    faults.arm(faults.FaultSpec(point="data.series", action="corrupt",
                                on_hit=on_hit, corrupt=boom))


class TestKeyboardInterrupt:
    def test_engine_settles_partial_on_interrupt(self):
        query = compile_query(QUERY)
        table = _two_series_table()
        clean = TRexEngine(on_error="partial").execute_query(
            query, table.partition(query.partition_by, query.order_by))
        _arm_interrupt(on_hit=2)
        result = TRexEngine(on_error="partial").execute_query(
            query, table.partition(query.partition_by, query.order_by))
        assert result.interrupted
        assert "KeyboardInterrupt" in result.degradation
        # Every series has a settled (possibly empty) entry, and the
        # settled prefix matches the clean run exactly.
        assert len(result.per_series) == len(clean.per_series)
        assert result.per_series[0].matches == clean.per_series[0].matches
        assert result.total_matches <= clean.total_matches

    def test_engine_reraises_under_raise_policy(self):
        query = compile_query(QUERY)
        table = _two_series_table()
        _arm_interrupt(on_hit=1)
        with pytest.raises(KeyboardInterrupt):
            TRexEngine(on_error="raise").execute_query(
                query, table.partition(query.partition_by,
                                       query.order_by))

    def test_cli_exits_130_with_partial_output(self, tmp_path, capsys):
        from repro.cli import main
        csv_path = tmp_path / "prices.csv"
        csv_path.write_text("ts,t,v\n" + "".join(
            f"{i},{t},{v}\n" for t in ("A", "B")
            for i, v in enumerate([10, 12, 11, 9, 8, 10, 12, 13])))
        _arm_interrupt(on_hit=2)
        code = main(["query", "--csv", str(csv_path), "--query", QUERY,
                     "--on-error", "partial"])
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED == 130
        assert "interrupted: KeyboardInterrupt" in captured.err
        assert "matches over" in captured.out  # summary still printed

    def test_cli_exits_130_when_interrupt_escapes(self, tmp_path, capsys):
        from repro.cli import main
        csv_path = tmp_path / "prices.csv"
        csv_path.write_text("ts,t,v\n" + "".join(
            f"{i},A,{v}\n"
            for i, v in enumerate([10, 12, 11, 9, 8, 10])))
        _arm_interrupt(on_hit=1)
        code = main(["query", "--csv", str(csv_path), "--query", QUERY,
                     "--on-error", "raise"])
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "interrupted (SIGINT)" in captured.err
