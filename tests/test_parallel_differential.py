"""Determinism harness: every parallel backend must equal serial, always.

The parallel executors (docs/PARALLELISM.md) promise a *byte-identical*
``QueryResult``: same matches per series, same truncation under global
budgets, same error records, same interruption point.  This suite pins
that promise with a template × backend × worker-count sweep, budget
boundary cases, analyze-mode metric equality and a hypothesis fuzz over
random workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import TRexEngine
from repro.core.parallel import reset_pools
from repro.errors import PlanError
from repro.lang.query import compile_query

from tests.conftest import make_series
from tests.test_differential import QUERY_BANK

EXECUTORS = ("thread", "process")
WORKER_COUNTS = (1, 2, 4)

#: A representative subset of the differential bank: one query per
#: operator family (the full bank runs under every backend in the CI
#: ``TREX_EXECUTOR`` matrix legs).
SWEEP_QUERIES = ("v_shape", "not", "kleene", "or", "point_kleene")


@pytest.fixture(autouse=True)
def no_executor_env(monkeypatch):
    # The sweep compares explicit executors; the surrounding environment
    # (e.g. a CI matrix leg) must not redefine what "serial" means.
    monkeypatch.delenv("TREX_EXECUTOR", raising=False)
    monkeypatch.delenv("TREX_WORKERS", raising=False)


def workload(num_series=8, n=26, seed=100):
    return [make_series(
        np.cumsum(np.random.default_rng(seed + i).normal(0, 1.2, n)) + 50,
        key=(f"s{i}",)) for i in range(num_series)]


def signature(result):
    """Everything observable about a result except wall-clock times."""
    return {
        "per_series": [
            (entry.key, tuple(entry.matches), dict(entry.stats),
             entry.error.to_dict() if entry.error is not None else None)
            for entry in result.per_series
        ],
        "interrupted": result.interrupted,
        "degradation": result.degradation,
        "planner_fallback": result.planner_fallback,
    }


def run(query_text, series_list, **engine_kwargs):
    engine = TRexEngine(**engine_kwargs)
    return engine.execute_query(compile_query(query_text), series_list)


class TestBackendEqualsSerial:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name", SWEEP_QUERIES)
    def test_clean_run_identical(self, name, executor, workers):
        series_list = workload()
        expected = signature(run(QUERY_BANK[name], series_list))
        got = signature(run(QUERY_BANK[name], series_list,
                            executor=executor, workers=workers))
        assert got == expected

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("max_matches", (1, 5, 23, 1000))
    def test_global_match_limit_truncates_identically(self, executor,
                                                      max_matches):
        series_list = workload()
        expected = signature(run(QUERY_BANK["kleene"], series_list,
                                 max_matches=max_matches))
        got = signature(run(QUERY_BANK["kleene"], series_list,
                            executor=executor, workers=4,
                            max_matches=max_matches))
        assert got == expected

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("max_segments", (5, 60, 140, 100_000))
    def test_global_segment_budget_identical(self, executor, max_segments):
        # The budget boundary falls mid-way through the series list; the
        # parallel merge must interrupt at the same series with the same
        # partial harvest as the serial walk (settlement + replay).
        series_list = workload()
        expected = signature(run(QUERY_BANK["kleene"], series_list,
                                 max_segments=max_segments,
                                 on_error="partial"))
        got = signature(run(QUERY_BANK["kleene"], series_list,
                            executor=executor, workers=4,
                            max_segments=max_segments, on_error="partial"))
        assert got == expected

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_empty_series_and_tables(self, executor):
        series_list = [make_series([], key=("empty",)),
                       *workload(num_series=2)]
        expected = signature(run(QUERY_BANK["or"], series_list))
        got = signature(run(QUERY_BANK["or"], series_list,
                            executor=executor, workers=2))
        assert got == expected
        empty = run(QUERY_BANK["or"], [make_series([], key=("e",))],
                    executor=executor)
        assert [len(e) for e in empty.per_series] == [0]


class TestAnalyzeMode:
    def metric_signature(self, result):
        # op_id values are plan-instance-specific (a global counter at
        # construction); compare positionally within to_list() order.
        return [(m["operator"], m["eval_calls"], m["segments_in"],
                 m["segments_out"], m.get("counters"))
                for m in result.op_metrics.to_list()]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_op_metrics_identical(self, executor):
        series_list = workload()
        serial = run(QUERY_BANK["v_shape"], series_list, analyze=True)
        parallel = run(QUERY_BANK["v_shape"], series_list, analyze=True,
                       executor=executor, workers=4)
        assert self.metric_signature(parallel) == \
            self.metric_signature(serial)
        assert parallel.plan_analyze

    def test_wall_seconds_reported(self):
        series_list = workload()
        serial = run(QUERY_BANK["or"], series_list)
        # Serially the wall clock covers exactly the per-series loop, so
        # the two accountings agree up to loop overhead.
        assert serial.execution_wall_seconds >= serial.execution_seconds
        assert serial.execution_wall_seconds == pytest.approx(
            serial.execution_seconds, abs=0.05)
        parallel = run(QUERY_BANK["or"], series_list,
                       executor="thread", workers=4)
        assert parallel.execution_wall_seconds > 0
        assert parallel.execution_seconds > 0
        metrics = parallel.metrics_dict()
        assert metrics["execution_wall_seconds"] == \
            parallel.execution_wall_seconds
        assert metrics["execution_seconds"] == parallel.execution_seconds


class TestConfiguration:
    def test_invalid_executor_rejected(self):
        with pytest.raises(PlanError):
            TRexEngine(executor="gpu")
        with pytest.raises(PlanError):
            TRexEngine(workers=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("TREX_EXECUTOR", "thread")
        assert TRexEngine().executor == "thread"
        monkeypatch.delenv("TREX_EXECUTOR")
        assert TRexEngine().executor == "serial"
        # An explicit argument beats the environment.
        monkeypatch.setenv("TREX_EXECUTOR", "process")
        assert TRexEngine(executor="serial").executor == "serial"

    def test_env_workers(self, monkeypatch):
        from repro.core.parallel import resolve_workers
        monkeypatch.setenv("TREX_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(5) == 5
        monkeypatch.setenv("TREX_WORKERS", "junk")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_reset_pools_is_safe(self):
        series_list = workload(num_series=2)
        run(QUERY_BANK["or"], series_list, executor="thread", workers=2)
        reset_pools()
        got = run(QUERY_BANK["or"], series_list,
                  executor="thread", workers=2)
        assert signature(got) == signature(run(QUERY_BANK["or"],
                                               series_list))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000),
       name=st.sampled_from(["kleene", "or", "point_kleene"]),
       num_series=st.integers(2, 6),
       max_matches=st.one_of(st.none(), st.integers(1, 40)))
def test_fuzz_thread_backend_equals_serial(seed, name, num_series,
                                           max_matches):
    series_list = workload(num_series=num_series, n=18, seed=seed)
    expected = signature(run(QUERY_BANK[name], series_list,
                             max_matches=max_matches))
    got = signature(run(QUERY_BANK[name], series_list,
                        executor="thread", workers=3,
                        max_matches=max_matches))
    assert got == expected
