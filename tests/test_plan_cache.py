"""Plan/compile cache: keying guarantees and observability.

The cache (repro.core.plancache) may only serve a plan when *nothing*
the planner could have observed differs: the bound query (parameter
literals included), the planner and sharing mode, and a content
fingerprint of the data's sampled statistics.  These tests pin each
keying dimension with a must-miss case, plus the counter surfaces in
``QueryResult`` and the EXPLAIN ANALYZE banner.
"""

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.core.plancache import (PlanCache, params_fingerprint,
                                  series_fingerprint)
from repro.lang.query import compile_query
from repro.testing import faults
from repro.timeseries.table import Table

from tests.conftest import make_series

QUERY = """
    ORDER BY tstamp
    PATTERN (UP & WIN)
    DEFINE SEGMENT UP AS last(UP.val) > first(UP.val),
      SEGMENT WIN AS window(2, 5)
"""

PARAM_QUERY = """
    ORDER BY tstamp
    PATTERN (UP & WIN)
    DEFINE SEGMENT UP AS last(UP.val) - first(UP.val) > :delta,
      SEGMENT WIN AS window(2, 5)
"""


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def series_list(seed=9, num_series=3, n=30):
    return [make_series(
        np.cumsum(np.random.default_rng(seed + i).normal(0, 1.0, n)) + 50,
        key=(f"s{i}",)) for i in range(num_series)]


class TestPlanKeying:
    def test_identical_query_and_data_hits(self):
        cache = PlanCache()
        engine = TRexEngine(plan_cache=cache)
        data = series_list()
        r1 = engine.execute_query(compile_query(QUERY), data)
        r2 = engine.execute_query(compile_query(QUERY), data)
        assert r1.plan_cache["plan"] == "miss"
        assert r2.plan_cache["plan"] == "hit"
        assert r1.matches_by_key() == r2.matches_by_key()
        assert cache.counters()["plan_hits"] == 1
        assert cache.counters()["plan_misses"] == 1

    def test_different_params_must_miss(self):
        cache = PlanCache()
        engine = TRexEngine(plan_cache=cache)
        data = series_list()
        r1 = engine.execute_query(
            compile_query(PARAM_QUERY, {"delta": 0.5}), data)
        r2 = engine.execute_query(
            compile_query(PARAM_QUERY, {"delta": 99.0}), data)
        assert r1.plan_cache["plan"] == "miss"
        assert r2.plan_cache["plan"] == "miss"
        # Same binding again does hit.
        r3 = engine.execute_query(
            compile_query(PARAM_QUERY, {"delta": 0.5}), data)
        assert r3.plan_cache["plan"] == "hit"

    def test_different_data_stats_must_miss(self):
        cache = PlanCache()
        engine = TRexEngine(plan_cache=cache)
        engine.execute_query(compile_query(QUERY), series_list(seed=9))
        r2 = engine.execute_query(compile_query(QUERY),
                                  series_list(seed=1234))
        assert r2.plan_cache["plan"] == "miss"

    def test_different_planner_or_sharing_must_miss(self):
        cache = PlanCache()
        data = series_list()
        TRexEngine(plan_cache=cache).execute_query(
            compile_query(QUERY), data)
        r2 = TRexEngine(optimizer="pr_left", plan_cache=cache) \
            .execute_query(compile_query(QUERY), data)
        assert r2.plan_cache["plan"] == "miss"
        r3 = TRexEngine(sharing="off", plan_cache=cache).execute_query(
            compile_query(QUERY), data)
        assert r3.plan_cache["plan"] == "miss"

    def test_shared_cache_across_engines_and_executors(self):
        cache = PlanCache()
        data = series_list()
        r1 = TRexEngine(plan_cache=cache).execute_query(
            compile_query(QUERY), data)
        r2 = TRexEngine(executor="thread", workers=2, plan_cache=cache) \
            .execute_query(compile_query(QUERY), data)
        assert r1.plan_cache["plan"] == "miss"
        assert r2.plan_cache["plan"] == "hit"
        assert r1.matches_by_key() == r2.matches_by_key()

    def test_series_fingerprint_sees_content(self):
        a = make_series([1.0, 2.0, 3.0])
        b = make_series([1.0, 2.5, 3.0])  # same endpoints, different sum
        assert series_fingerprint(a) != series_fingerprint(b)
        assert series_fingerprint(a) == series_fingerprint(
            make_series([1.0, 2.0, 3.0]))

    def test_params_fingerprint_order_independent(self):
        assert params_fingerprint({"a": 1, "b": 2}) == \
            params_fingerprint({"b": 2, "a": 1})
        assert params_fingerprint({"a": 1}) != params_fingerprint(
            {"a": 2})
        assert params_fingerprint(None) == params_fingerprint({})


class TestCompileCache:
    def test_execute_path_memoizes_compilation(self):
        cache = PlanCache()
        engine = TRexEngine(plan_cache=cache)
        data = series_list(num_series=1)
        table = Table.from_series(data)
        engine.execute(table, QUERY)
        engine.execute(table, QUERY)
        counters = cache.counters()
        assert counters["compile_misses"] == 1
        assert counters["compile_hits"] == 1

    def test_plan_cache_true_builds_private_cache(self):
        engine = TRexEngine(plan_cache=True)
        assert isinstance(engine.plan_cache, PlanCache)
        assert TRexEngine(plan_cache=False).plan_cache is None
        assert TRexEngine().plan_cache is None


class TestEvictionAndReporting:
    def test_lru_eviction_is_bounded(self):
        cache = PlanCache(max_entries=2)
        engine = TRexEngine(plan_cache=cache)
        data = series_list()
        queries = [PARAM_QUERY] * 3
        for delta in (1.0, 2.0, 3.0):
            engine.execute_query(
                compile_query(queries[0], {"delta": delta}), data)
        # delta=1.0 was evicted; delta=3.0 is still cached.
        r_old = engine.execute_query(
            compile_query(PARAM_QUERY, {"delta": 1.0}), data)
        assert r_old.plan_cache["plan"] == "miss"
        r_new = engine.execute_query(
            compile_query(PARAM_QUERY, {"delta": 3.0}), data)
        assert r_new.plan_cache["plan"] == "hit"

    def test_metrics_dict_and_analyze_banner(self):
        cache = PlanCache()
        data = series_list()
        engine = TRexEngine(analyze=True, plan_cache=cache)
        engine.execute_query(compile_query(QUERY), data)
        result = engine.execute_query(compile_query(QUERY), data)
        metrics = result.metrics_dict()
        assert metrics["plan_cache"]["plan"] == "hit"
        assert metrics["plan_cache"]["plan_hits"] == 1
        first_line = result.plan_analyze.splitlines()[0]
        assert first_line.startswith(":: plan cache: hit")
        # Engines without a cache report nothing.
        bare = TRexEngine(analyze=True).execute_query(
            compile_query(QUERY), data)
        assert "plan_cache" not in bare.metrics_dict()
        assert not bare.plan_analyze.startswith("::")

    def test_cached_fallback_plan_stays_visible(self):
        """A plan built via planner fallback re-reports the fallback
        reason on every cache hit."""
        cache = PlanCache()
        data = series_list()
        with faults.inject("planner.dp", action="plan"):
            r1 = TRexEngine(plan_cache=cache).execute_query(
                compile_query(QUERY), data)
        assert r1.planner_fallback is not None
        assert r1.plan_cache["plan"] == "miss"
        # No fault armed now: a hit must still surface the reason.
        r2 = TRexEngine(plan_cache=cache).execute_query(
            compile_query(QUERY), data)
        assert r2.plan_cache["plan"] == "hit"
        assert r2.planner_fallback == r1.planner_fallback

    def test_clear_resets_entries_not_counters(self):
        cache = PlanCache()
        engine = TRexEngine(plan_cache=cache)
        data = series_list()
        engine.execute_query(compile_query(QUERY), data)
        cache.clear()
        r = engine.execute_query(compile_query(QUERY), data)
        assert r.plan_cache["plan"] == "miss"
        assert cache.counters()["plan_misses"] == 2
