"""Parser tests: patterns, conditions, clauses, errors."""

import pytest

from repro.errors import QuerySyntaxError
from repro.lang import expr as E
from repro.lang import pattern as P
from repro.lang.parser import parse, parse_condition, parse_pattern


class TestPatternGrammar:
    def test_single_variable(self):
        assert parse_pattern("A") == P.VarRef("A")

    def test_concatenation(self):
        pattern = parse_pattern("A B C")
        assert isinstance(pattern, P.Concat)
        assert [p.name for p in pattern.parts] == ["A", "B", "C"]

    def test_and_precedence_looser_than_concat(self):
        pattern = parse_pattern("A B & C")
        assert isinstance(pattern, P.And)
        assert isinstance(pattern.parts[0], P.Concat)

    def test_or_loosest(self):
        pattern = parse_pattern("A & B | C")
        assert isinstance(pattern, P.Or)
        assert isinstance(pattern.parts[0], P.And)

    def test_not_binds_tight(self):
        pattern = parse_pattern("A & ~(B C)")
        assert isinstance(pattern, P.And)
        negation = pattern.parts[1]
        assert isinstance(negation, P.Not)
        assert isinstance(negation.child, P.Concat)

    def test_kleene_star(self):
        pattern = parse_pattern("A*")
        assert pattern == P.Kleene(P.VarRef("A"), 0, None)

    def test_kleene_plus(self):
        assert parse_pattern("A+") == P.Kleene(P.VarRef("A"), 1, None)

    def test_kleene_question(self):
        assert parse_pattern("A?") == P.Kleene(P.VarRef("A"), 0, 1)

    def test_kleene_exact(self):
        assert parse_pattern("A{3}") == P.Kleene(P.VarRef("A"), 3, 3)

    def test_kleene_range(self):
        assert parse_pattern("A{2,5}") == P.Kleene(P.VarRef("A"), 2, 5)

    def test_kleene_open_range(self):
        assert parse_pattern("A{2,}") == P.Kleene(P.VarRef("A"), 2, None)

    def test_kleene_param_bound(self):
        pattern = parse_pattern("A{:k}", params={"k": 4})
        assert pattern == P.Kleene(P.VarRef("A"), 4, 4)

    def test_kleene_param_missing(self):
        with pytest.raises(QuerySyntaxError):
            parse_pattern("A{:k}")

    def test_nested_parens(self):
        pattern = parse_pattern("((A B) & C) D")
        assert isinstance(pattern, P.Concat)
        assert isinstance(pattern.parts[0], P.And)

    def test_flattening(self):
        pattern = parse_pattern("A & B & C")
        assert isinstance(pattern, P.And)
        assert len(pattern.parts) == 3

    def test_trailing_junk_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_pattern("A )")

    def test_describe_round_trip(self):
        text = "((A (B & C) D) & E)"
        pattern = parse_pattern(text)
        assert parse_pattern(pattern.describe()) == pattern


class TestConditionGrammar:
    def test_comparison(self):
        cond = parse_condition("a < 3")
        assert cond == E.Binary("<", E.ColumnRef(None, "a"), E.Literal(3))

    def test_qualified_column(self):
        cond = parse_condition("UP.price >= 2.5")
        assert cond.left == E.ColumnRef("UP", "price")

    def test_arithmetic_precedence(self):
        cond = parse_condition("1 + 2 * 3 = 7")
        left = cond.left
        assert left.op == "+"
        assert left.right.op == "*"

    def test_unary_minus(self):
        cond = parse_condition("-:x", params={"x": 5})
        assert cond == E.Unary("-", E.Literal(5))

    def test_between(self):
        cond = parse_condition("a BETWEEN 1 AND 5")
        assert isinstance(cond, E.Between)

    def test_boolean_precedence(self):
        cond = parse_condition("a > 1 AND b > 2 OR c > 3")
        assert cond.op == "or"
        assert cond.left.op == "and"

    def test_not(self):
        cond = parse_condition("NOT a > 1")
        assert cond == E.Unary("not", parse_condition("a > 1"))

    def test_first_last(self):
        cond = parse_condition("last(X.v) - first(X.v) < 0")
        assert isinstance(cond.left.left, E.PointAccess)
        assert cond.left.left.which == "last"

    def test_first_requires_column(self):
        with pytest.raises(QuerySyntaxError):
            parse_condition("first(1 + 2)")

    def test_aggregate_call(self):
        cond = parse_condition("linear_reg_r2(X.t, X.v) >= 0.9")
        call = cond.left
        assert isinstance(call, E.AggCall)
        assert call.name == "linear_reg_r2"
        assert len(call.columns) == 2

    def test_aggregate_extra_args(self):
        cond = parse_condition("zscore_outlier(price, 15) > 2.5")
        call = cond.left
        assert len(call.columns) == 1
        assert call.extra == (E.Literal(15),)

    def test_window_call(self):
        cond = parse_condition("window(1, 5)")
        assert isinstance(cond, E.WindowCall)

    def test_window_time_form(self):
        cond = parse_condition("window(tstamp, 25, 30, DAY)")
        assert isinstance(cond, E.WindowCall)
        assert len(cond.args) == 4

    def test_string_literal(self):
        cond = parse_condition("ticker = 'GOOG'")
        assert cond.right == E.Literal("GOOG")

    def test_true_false_null(self):
        assert parse_condition("true") == E.Literal(True)
        assert parse_condition("false") == E.Literal(False)
        assert parse_condition("null") == E.Literal(None)

    def test_params_substituted_at_parse(self):
        assert parse_condition(":x", params={"x": 2.5}) == E.Literal(2.5)

    def test_params_left_unbound(self):
        assert parse_condition(":x") == E.Param("x")

    def test_division(self):
        cond = parse_condition("a / b > 1 / :r", params={"r": 4})
        assert cond.left.op == "/"

    def test_integer_vs_float_literal(self):
        assert parse_condition("3") == E.Literal(3)
        assert parse_condition("3.0") == E.Literal(3.0)

    def test_interval_literal(self):
        cond = parse_condition("a <= INTERVAL '5' DAY")
        assert cond.right == E.Interval(5.0, "DAY")

    def test_interval_in_between(self):
        cond = parse_condition(
            "a BETWEEN INTERVAL '25' DAY AND INTERVAL '30' DAY")
        assert cond.low == E.Interval(25.0, "DAY")
        assert cond.high == E.Interval(30.0, "DAY")

    def test_interval_as_column_name_still_works(self):
        cond = parse_condition("interval > 3")
        assert cond.left == E.ColumnRef(None, "interval")


class TestQueryClauses:
    QUERY = """
    PARTITION BY city, region
    ORDER BY tstamp
    PATTERN (A B)
    SUBSET U = (A, B)
    DEFINE A AS val < 3, SEGMENT B AS true
    """

    def test_full_parse(self):
        parsed = parse(self.QUERY)
        assert parsed.partition_by == ["city", "region"]
        assert parsed.order_by == "tstamp"
        assert parsed.subsets == {"U": ("A", "B")}
        assert [(d.name, d.is_segment) for d in parsed.defines] == [
            ("A", False), ("B", True)]

    def test_pattern_with_trailing_and(self):
        parsed = parse(
            "ORDER BY t\nPATTERN (A B) & W\nDEFINE SEGMENT W AS true")
        assert isinstance(parsed.pattern, P.And)

    def test_missing_pattern_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("ORDER BY t\nDEFINE A AS true")

    def test_unknown_clause_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("FROB x")

    def test_trailing_comma_tolerated(self):
        parsed = parse("ORDER BY t\nPATTERN (A)\nDEFINE A AS val > 1,")
        assert len(parsed.defines) == 1

    def test_seg_keyword_alias(self):
        parsed = parse("ORDER BY t\nPATTERN (B)\nDEFINE SEG B AS true")
        assert parsed.defines[0].is_segment
