"""Regression tests: every operator family must tick() in its hot loop.

A deadline already in the past plus ``TICK_STRIDE = 1`` makes the very
first ``ctx.tick()`` raise :class:`QueryTimeout`, so these tests fail if
an operator's merge/probe loop stops calling ``tick()`` (the engine
deadline would then be silently ignored while that operator runs).  The
hand-built child operators never tick, so a raised timeout can only come
from the operator under test.
"""

import time

import pytest

from repro.errors import QueryTimeout
from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import ExecContext, PhysicalOperator
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment

from tests.conftest import make_series

WILD = WindowConjunction.wild()

SEGMENTS = ((0, 1), (1, 2), (2, 3))


class _StaticOp(PhysicalOperator):
    """Child yielding precomputed segments without ever ticking."""

    name = "Static"

    def __init__(self, bounds=SEGMENTS):
        super().__init__(WILD)
        self._bounds = bounds

    def eval(self, ctx, sp, refs):
        for start, end in self._bounds:
            if sp.contains(start, end):
                yield Segment(start, end)


def window(lo, hi):
    return WindowConjunction([WindowSpec.point(lo, hi)])


FAMILIES = {
    "SortMergeConcat":
        lambda: SortMergeConcat(_StaticOp(), _StaticOp(), 0, WILD),
    "RightProbeConcat":
        lambda: RightProbeConcat(_StaticOp(), _StaticOp(), 0, WILD),
    "LeftProbeConcat":
        lambda: LeftProbeConcat(_StaticOp(), _StaticOp(), 0, WILD),
    "WildWindowConcat":
        lambda: WildWindowConcat(_StaticOp(), _StaticOp(), WILD, WILD),
    "SortMergeAnd":
        lambda: SortMergeAnd(_StaticOp(), _StaticOp(), WILD),
    "RightProbeAnd":
        lambda: RightProbeAnd(_StaticOp(), _StaticOp(), WILD),
    "LeftProbeAnd":
        lambda: LeftProbeAnd(_StaticOp(), _StaticOp(), WILD),
    "SortMergeOr":
        lambda: SortMergeOr(_StaticOp(), _StaticOp(), WILD),
    "MaterializeNot":
        lambda: MaterializeNot(_StaticOp(), window(1, 2)),
    "ProbeNot":
        lambda: ProbeNot(_StaticOp(), window(1, 2)),
    "MaterializeKleene":
        lambda: MaterializeKleene(_StaticOp(), 1, None, 0, WILD),
}


def expired_ctx(series):
    ctx = ExecContext(series, deadline=time.perf_counter() - 1.0)
    ctx.TICK_STRIDE = 1  # instance attribute shadows the class default
    return ctx


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_operator_hot_loop_ticks(family):
    series = make_series([1.0, 2.0, 3.0, 4.0])
    op = FAMILIES[family]()
    ctx = expired_ctx(series)
    with pytest.raises(QueryTimeout):
        list(op.eval(ctx, SearchSpace.full(len(series)), {}))


def test_live_deadline_not_triggered():
    """Sanity check: a generous deadline lets the same plans finish."""
    series = make_series([1.0, 2.0, 3.0, 4.0])
    for family, factory in FAMILIES.items():
        ctx = ExecContext(series, deadline=time.perf_counter() + 60.0)
        ctx.TICK_STRIDE = 1
        list(factory().eval(ctx, SearchSpace.full(len(series)), {}))
