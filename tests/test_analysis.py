"""Static analyzer tests: the bad-query corpus, the lint-clean sweep over
bundled queries, and the plan-verify contract checks."""

import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro.aggregates.basic import MaxAggregate
from repro.aggregates.registry import AggregateRegistry
from repro.analysis import (CATALOG, Diagnostic, Severity, analyze,
                            check_cost_coverage, discover_exec_operators,
                            has_errors, lint_text, operator_cost_key,
                            reference_flow, sort_diagnostics,
                            verify_execution_contracts, verify_plan)
from repro.analysis.diagnostics import Span
from repro.errors import QueryLintError
from repro.exec.base import PhysicalOperator
from repro.exec.concat import SortMergeConcat
from repro.exec.not_op import MaterializeNot
from repro.exec.seggen import SegGenFilter, SegGenWindow
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef, compile_query
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.optimizer.cost_params import CostParams
from repro.queries import ALL_TEMPLATES
from repro.timeseries.segment import Segment

from tests.conftest import make_series

REPO_ROOT = Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# The bad-query corpus: each entry asserts the exact code, severity and span
# ---------------------------------------------------------------------------

#: label -> (query text, [(code, severity, line, column), ...])
BAD_QUERIES = {
    "syntax-error": (
        "ORDER BY tstamp\n"
        "PATTERN ((A\n"
        "DEFINE SEGMENT A AS true",
        [("TRX000", Severity.ERROR, 3, 1)],
    ),
    "defined-not-in-pattern": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS A.val > 0,\n"
        "  SEGMENT GHOST AS window(1, 2)",
        [("TRX001", Severity.ERROR, 5, 11)],
    ),
    "duplicate-definition": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS A.val > 0,\n"
        "  SEGMENT A AS A.val < 5",
        [("TRX002", Severity.ERROR, 5, 11)],
    ),
    "undefined-reference": (
        "ORDER BY tstamp\n"
        "PATTERN (A B)\n"
        "DEFINE\n"
        "  SEGMENT A AS avg(A.val) > BB.val",
        [("TRX003", Severity.ERROR, 4, 29)],
    ),
    "window-on-point-var": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  A AS window(2, 5)",
        [("TRX004", Severity.ERROR, 4, 3)],
    ),
    "nested-window": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS (window(2, 5) OR A.val > 3)",
        [("TRX005", Severity.ERROR, 4, 11)],
    ),
    "malformed-window": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS window(5, 3)",
        [("TRX006", Severity.ERROR, 4, 11)],
    ),
    "unknown-aggregate": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS avgg(A.val) > 0",
        [("TRX007", Severity.ERROR, 4, 16)],
    ),
    "aggregate-arity": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS corr(A.val) > 0",
        [("TRX008", Severity.ERROR, 4, 16)],
    ),
    "unbound-parameter": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS avg(A.val) > :thresh",
        [("TRX009", Severity.ERROR, 4, 29)],
    ),
    "contradictory-windows": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS window(10, 20) AND window(2, 5)",
        [("TRX010", Severity.ERROR, 4, 11)],
    ),
    "contradictory-time-windows": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS window(tstamp, 10, 20, DAY)\n"
        "    AND window(tstamp, 1, 2, DAY)",
        [("TRX010", Severity.ERROR, 4, 11)],
    ),
    "unsatisfiable-pattern": (
        "ORDER BY tstamp\n"
        "PATTERN (A B) & CAP\n"
        "DEFINE\n"
        "  SEGMENT A AS window(10, 20),\n"
        "  SEGMENT B AS window(10, 20),\n"
        "  SEGMENT CAP AS window(0, 5)",
        [("TRX011", Severity.ERROR, 4, 11)],
    ),
    "reference-into-kleene": (
        "ORDER BY tstamp\n"
        "PATTERN ((A & CAP)+ B) & CAP\n"
        "DEFINE\n"
        "  SEGMENT A AS avg(A.val) > 0,\n"
        "  SEGMENT CAP AS window(0, 9),\n"
        "  SEGMENT B AS avg(B.val) > avg(A.val)",
        [("TRX012", Severity.ERROR, 6, 11)],
    ),
    "reference-into-not": (
        "ORDER BY tstamp\n"
        "PATTERN (~A B)\n"
        "DEFINE\n"
        "  SEGMENT A AS A.val > 0,\n"
        "  SEGMENT B AS avg(B.val) > avg(A.val)",
        [("TRX012", Severity.ERROR, 5, 11)],
    ),
    "not-matches-everything": (
        "ORDER BY tstamp\n"
        "PATTERN (~A B)\n"
        "DEFINE\n"
        "  SEGMENT A AS true,\n"
        "  SEGMENT B AS B.val > 0",
        [("TRX013", Severity.ERROR, 4, 11)],
    ),
    "bind-failure": (
        "PATTERN (A)\n"
        "DEFINE SEGMENT A AS A.val > 0",
        [("TRX014", Severity.ERROR, None, None)],
    ),
    "unbounded-kleene": (
        "ORDER BY tstamp\n"
        "PATTERN ((A)+)\n"
        "DEFINE\n"
        "  SEGMENT A AS avg(A.val) > 0",
        [("TRX101", Severity.WARNING, 4, 11)],
    ),
    "wild-window": (
        "ORDER BY tstamp\n"
        "PATTERN (A)\n"
        "DEFINE\n"
        "  SEGMENT A AS window(0, inf)",
        [("TRX102", Severity.WARNING, 4, 11)],
    ),
    "unused-subset": (
        "ORDER BY tstamp\n"
        "PATTERN (A B)\n"
        "SUBSET U = (A, B)\n"
        "DEFINE\n"
        "  SEGMENT A AS A.val > 0",
        [("TRX103", Severity.WARNING, None, None)],
    ),
    "reference-cycle": (
        "ORDER BY tstamp\n"
        "PATTERN (A B)\n"
        "DEFINE\n"
        "  SEGMENT A AS avg(A.val) > avg(B.val),\n"
        "  SEGMENT B AS avg(B.val) > avg(A.val)",
        [("TRX104", Severity.WARNING, 4, 11)],
    ),
    "aggregate-over-point-var": (
        "ORDER BY tstamp\n"
        "PATTERN (A B)\n"
        "DEFINE\n"
        "  A AS A.val > 0,\n"
        "  SEGMENT B AS avg(A.val) > 2",
        [("TRX105", Severity.WARNING, 5, 11)],
    ),
}


@pytest.mark.parametrize("label", sorted(BAD_QUERIES))
def test_bad_query_corpus(label):
    text, expected = BAD_QUERIES[label]
    diags = lint_text(text)
    got = [(d.code, d.severity,
            d.span.line if d.span else None,
            d.span.column if d.span else None) for d in diags]
    for item in expected:
        assert item in got, f"expected {item} in {got}"
    for diag in diags:
        assert diag.code in CATALOG
        assert diag.message


def test_corpus_covers_fifteen_distinct_bad_queries():
    errors = [label for label, (_, expected) in BAD_QUERIES.items()
              if any(sev is Severity.ERROR for _, sev, _, _ in expected)]
    assert len(BAD_QUERIES) >= 15
    assert len(errors) >= 10


def test_diagnostic_formatting_and_sorting():
    diag = Diagnostic("TRX003", Severity.ERROR, "boom",
                      span=Span(3, 12, 2), hint="fix it")
    text = diag.format("q.trex")
    assert text.startswith("q.trex:3:12: error[TRX003]: boom")
    assert "hint: fix it" in text
    payload = diag.to_dict()
    assert payload["line"] == 3 and payload["severity"] == "error"
    unsorted = [Diagnostic("TRX103", Severity.WARNING, "late"),
                Diagnostic("TRX001", Severity.ERROR, "early",
                           span=Span(1, 1))]
    assert [d.code for d in sort_diagnostics(unsorted)] == \
        ["TRX001", "TRX103"]
    assert has_errors(unsorted)


# ---------------------------------------------------------------------------
# Lint-clean sweep: bundled templates and example queries
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("template", ALL_TEMPLATES, ids=lambda t: t.name)
def test_templates_lint_clean(template, assert_lint_clean):
    for params in template.param_sets():
        assert_lint_clean(template.text, dict(params))


def _example_query(path):
    match = re.search(r'^QUERY = """(.*?)"""', path.read_text(),
                      re.DOTALL | re.MULTILINE)
    return match.group(1) if match else None


EXAMPLE_PARAMS = {
    "quickstart.py": {"fit": 0.85, "max_days": 30},
    "correlated_patterns.py": {"min_corr": 0.95},
    "custom_aggregate.py": {},
}


@pytest.mark.parametrize("name", sorted(EXAMPLE_PARAMS))
def test_example_scripts_lint_clean(name, assert_lint_clean):
    text = _example_query(REPO_ROOT / "examples" / name)
    assert text, f"no QUERY constant found in {name}"
    registry = None
    if name == "custom_aggregate.py":
        registry = AggregateRegistry()
        registry.register(MaxAggregate(), aliases=("range_ratio",))
    assert_lint_clean(text, EXAMPLE_PARAMS[name], registry=registry)


def test_example_query_files_lint_clean(assert_lint_clean):
    paths = sorted((REPO_ROOT / "examples" / "queries").glob("*.trex"))
    assert paths, "examples/queries/ has no .trex files"
    for path in paths:
        assert_lint_clean(path.read_text())


# ---------------------------------------------------------------------------
# Plan verify: reference flow, publish/require, runtime contracts, costs
# ---------------------------------------------------------------------------

WILD = WindowConjunction.wild()


def _consumer(name="X", refs=("UP",)):
    condition = parse_condition(f"corr({name}.val, UP.val) > 0.5")
    return VarDef(name, True, (), condition, frozenset(refs))


def test_reference_flow_flags_missing_provider():
    left = SegGenWindow(WILD, "UP")  # does NOT publish UP
    right = SegGenFilter(_consumer(), WILD)
    plan = SortMergeConcat(left, right, 0, WILD,
                           requires=frozenset({"UP"}))
    diags = reference_flow(plan)
    assert diags and all(d.code == "TRX201" for d in diags)
    assert any("UP" in d.message for d in diags)
    assert all(d.severity is Severity.ERROR for d in diags)


def test_verify_plan_flags_unbound_publish():
    # Publishes X, but the subtree only ever binds UP.
    plan = SegGenWindow(WILD, "UP", publish=frozenset({"X"}))
    codes = {d.code for d in verify_plan(plan)}
    assert "TRX202" in codes


def test_verify_plan_flags_underdeclared_requires():
    # The Not child consumes UP from above, but the operator does not
    # propagate that into its own requires set.
    child = SegGenFilter(_consumer(), WILD)
    plan = MaterializeNot(child, WILD, requires=frozenset())
    codes = {d.code for d in verify_plan(plan)}
    assert "TRX203" in codes and "TRX201" in codes


def test_verify_plan_accepts_planner_output(small_table):
    query = compile_query("""
        ORDER BY tstamp
        PATTERN (UP GAP X) & WINDOW
        DEFINE SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.price) >= 0.6,
          SEGMENT GAP AS true,
          SEGMENT X AS corr(X.price, UP.price) >= 0.9 AND window(2, 4),
          SEGMENT WINDOW AS window(4, 12)
    """)
    from repro.optimizer.planner import CostBasedPlanner
    series = small_table.partition(query.partition_by, query.order_by)
    plan = CostBasedPlanner().plan(query, None, series)
    assert verify_plan(plan) == []
    assert verify_execution_contracts(plan, series[0]) == []


class _RogueSpaceOp(PhysicalOperator):
    """Deliberately emits a segment beyond the clamped search space."""

    name = "RogueSpace"

    def eval(self, ctx, sp, refs):
        yield Segment(0, len(ctx.series) + 4)


class _RogueWindowOp(PhysicalOperator):
    """Deliberately emits a segment violating its embedded window."""

    name = "RogueWindow"

    def eval(self, ctx, sp, refs):
        yield Segment(0, 1)  # duration 2, window demands >= 5


def test_execution_contract_flags_space_escape():
    plan = _RogueSpaceOp(WILD)
    series = make_series(np.arange(10.0))
    diags = verify_execution_contracts(plan, series)
    assert [d.code for d in diags] == ["TRX204"]
    assert "RogueSpace" in diags[0].message


def test_execution_contract_flags_window_violation():
    window = WindowConjunction([WindowSpec("point", 5, 10, None, None)])
    plan = _RogueWindowOp(window)
    series = make_series(np.arange(10.0))
    diags = verify_execution_contracts(plan, series)
    assert [d.code for d in diags] == ["TRX205"]
    assert "RogueWindow" in diags[0].message


def test_cost_coverage_clean_for_shipped_operators():
    assert check_cost_coverage() == []
    operators = discover_exec_operators()
    names = {cls.__name__ for cls in operators}
    assert {"SegGenWindow", "SegGenFilter", "SegGenIndexing", "FilterOp",
            "SortMergeConcat", "MaterializeKleene",
            "SubPatternCache"} <= names


def test_cost_coverage_flags_missing_entry():
    class Uncosted(PhysicalOperator):
        name = "BrandNewOp"

        def eval(self, ctx, sp, refs):
            return iter(())

    diags = check_cost_coverage(operators=[Uncosted])
    assert [d.code for d in diags] == ["TRX206"]
    assert "BrandNewOp" in diags[0].message

    class Aliased(Uncosted):
        cost_key = "Filter"

    assert operator_cost_key(Aliased) == "Filter"
    assert check_cost_coverage(operators=[Aliased]) == []
    assert check_cost_coverage(params=CostParams(operator_weights={}),
                               operators=[Aliased])


# ---------------------------------------------------------------------------
# Engine + CLI integration
# ---------------------------------------------------------------------------

BAD_ENGINE_QUERY = """
ORDER BY tstamp
PATTERN (A)
DEFINE SEGMENT A AS window(10, 20) AND window(2, 5)
"""

WARN_ENGINE_QUERY = """
ORDER BY tstamp
PATTERN ((A)+)
DEFINE SEGMENT A AS avg(A.val) > 1000
"""


def test_engine_lint_rejects_errors(walk_series):
    from repro.core.engine import TRexEngine
    engine = TRexEngine(lint=True)
    query = compile_query(BAD_ENGINE_QUERY)
    with pytest.raises(QueryLintError) as err:
        engine.execute_query(query, [walk_series])
    assert any(d.code == "TRX010" for d in err.value.diagnostics)


def test_engine_lint_logs_warnings(walk_series, caplog):
    from repro.core.engine import TRexEngine
    engine = TRexEngine(lint=True)
    query = compile_query(WARN_ENGINE_QUERY)
    with caplog.at_level("WARNING", logger="repro.core.engine"):
        engine.execute_query(query, [walk_series])
    assert any("TRX101" in record.message for record in caplog.records)


def test_engine_lint_off_by_default(walk_series):
    from repro.core.engine import TRexEngine
    query = compile_query(BAD_ENGINE_QUERY)
    result = TRexEngine().execute_query(query, [walk_series])
    assert result.total_matches == 0


def test_cli_lint_bad_file(tmp_path, capsys):
    from repro.cli import main
    bad = tmp_path / "bad.trex"
    bad.write_text(BAD_ENGINE_QUERY)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "error[TRX010]" in out and "bad.trex:4:" in out


def test_cli_lint_good_files_and_templates(capsys):
    from repro.cli import main
    paths = sorted((REPO_ROOT / "examples" / "queries").glob("*.trex"))
    assert main(["lint", *map(str, paths)]) == 0
    assert main(["lint", "--all-templates"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_json_and_strict(tmp_path, capsys):
    from repro.cli import main
    warn = tmp_path / "warn.trex"
    warn.write_text(WARN_ENGINE_QUERY)
    assert main(["lint", str(warn)]) == 0
    assert main(["lint", "--strict", str(warn)]) == 1
    capsys.readouterr()
    assert main(["lint", "--format", "json", str(warn)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload and payload[0]["code"] == "TRX101"
    assert payload[0]["severity"] == "warning"


def test_analyze_api_on_bound_query():
    query = compile_query(WARN_ENGINE_QUERY)
    diags = analyze(query)
    assert [d.code for d in diags] == ["TRX101"]
    assert not has_errors(diags)
