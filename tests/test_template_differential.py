"""Differential testing of the 11 evaluation templates themselves.

Each template (parameters from its grid) runs on a tiny slice of its
synthetic dataset through the T-ReX engine, AFA and (where tractable) the
brute-force reference; all must agree.  This closes the loop between the
paper's actual evaluation queries and the semantics tests.
"""

import pytest

from repro.baselines import make_executor
from repro.core.bruteforce import BruteForceMatcher
from repro.datasets import load
from repro.queries import get_template

#: Template -> (dataset kwargs, series to take, brute-force feasible).
CONFIG = {
    "v_shape": (dict(num_series=2, length=26), 1, True),
    "outlier": (dict(num_series=2, length=26), 1, True),
    "rebound": (dict(num_series=3, length=30), 2, True),
    "cld_wave": (dict(num_series=1, length=45), 1, False),
    "limit_sell": (dict(num_series=2, length=24), 1, True),
    "head_shldr": (dict(num_series=1, length=22), 1, False),
    "rptd_pttrn": (dict(num_series=1, length=60), 1, False),
    "OpenCEP_Q1": (dict(num_series=1, length=40), 1, False),
    "OpenCEP_Q2": (dict(num_series=1, length=40), 1, True),
    "AFA_Q1": (dict(num_series=1, length=22), 1, False),
    "AFA_Q2": (dict(num_series=1, length=22), 1, True),
}


def series_for(name):
    template = get_template(name)
    kwargs, take, _ = CONFIG[name]
    table = load(template.dataset, **kwargs)
    query = template.compile(template.param_sets()[0])
    return template, table.partition(query.partition_by,
                                     query.order_by)[:take]


@pytest.mark.parametrize("name", sorted(CONFIG))
def test_template_trex_agrees_with_afa(name):
    template, series_list = series_for(name)
    params = template.param_sets()[len(template.param_sets()) // 2]
    query = template.compile(params)
    trex = make_executor("trex", query)
    afa = make_executor("afa", query)
    for series in series_list:
        assert trex.match_series(series) == afa.match_series(series), name


@pytest.mark.parametrize(
    "name", [n for n, (_, _, brute) in sorted(CONFIG.items()) if brute])
def test_template_trex_agrees_with_bruteforce(name):
    template, series_list = series_for(name)
    params = template.param_sets()[0]
    query = template.compile(params)
    matcher = BruteForceMatcher(query)
    trex = make_executor("trex", query)
    for series in series_list:
        expected = sorted(matcher.match_series(series))
        assert trex.match_series(series) == expected, name


@pytest.mark.parametrize("name", ["v_shape", "cld_wave", "limit_sell",
                                  "OpenCEP_Q2"])
def test_template_naive_trees_agree(name):
    template, series_list = series_for(name)
    params = template.param_sets()[0]
    query = template.compile(params)
    reference = make_executor("trex", query)
    for label in ("zstream", "opencep", "trex-batch", "nested-afa"):
        executor = make_executor(label, query)
        for series in series_list:
            assert executor.match_series(series) == \
                reference.match_series(series), (name, label)
