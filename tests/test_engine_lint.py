"""Engine contract analyzer tests (``repro lint --engine``).

Three layers:

* a bad-fixture corpus — one minimal snippet per rule (TRX300–TRX502),
  each of which the analyzer must flag;
* suppression mechanics — reasoned pragmas suppress and are recorded,
  reasonless pragmas are themselves findings and suppress nothing, and
  registry-listed exact-float sites record registry suppressions;
* the baseline file round-trip and the repo self-check (the committed
  engine tree must be clean, which is what CI's strict gate enforces).
"""

import json
import textwrap

import pytest

from repro.analysis import (apply_baseline, lint_engine, lint_source,
                            load_baseline, render_json, render_sarif,
                            render_text, write_baseline)
from repro.analysis.engine_lint import BASELINE_VERSION
from repro.errors import EngineLintError, error_kind, exit_code


def lint(source, relpath="exec/bad.py"):
    return lint_source(textwrap.dedent(source), relpath)


def codes(report):
    return [diag.code for _, diag in report.findings]


# -- bad-fixture corpus: one snippet per rule --------------------------------

UNTICKED_LOOP = """
class BadOp:
    def eval(self, ctx, sp, refs):
        for segment in self.child.eval(ctx, sp, refs):
            yield segment
"""

NO_CHARGE = """
class BadOp:
    def eval(self, ctx, sp, refs):
        out = []
        for segment in self.child.eval(ctx, sp, refs):
            ctx.tick()
            out.append(segment)
        return out
"""

UNPROVABLE_HELPER = """
class BadOp:
    def eval(self, ctx, sp, refs):
        return helper(refs)


def helper(refs):
    total = 0
    for key in refs:
        total = total + len(key)
    return total
"""

SET_ITERATION = """
class BadOp:
    def order(self, segments):
        chosen = set(segments)
        for segment in chosen:
            yield segment
"""

DICT_ITERATION_YIELD = """
class BadOp:
    def emit(self, table):
        for key, rows in table.items():
            yield key, rows
"""

ID_SORT_KEY = """
class BadOp:
    def pick(self, ops):
        return sorted(ops, key=lambda op: id(op))
"""

ID_COMPARE = """
class BadOp:
    def same(self, left, right):
        return id(left) == id(right)
"""

CLOCK_READ = """
import time


class BadOp:
    def now(self):
        return time.perf_counter()
"""

FLOAT_EQUALITY = """
class BadIndex:
    def lookup(self, values, lo, hi):
        total = float(values[hi])
        if total == values[lo]:
            return 0.0
        return total
"""

UNGUARDED_ACCUMULATION = """
class BadIndex:
    def _sum(self, values):
        total = 0.0
        for value in values:
            total += float(value)
        return total
"""

VECTOR_BATCH_KNIFE_EDGE = """
class BadKernel:
    def _fold(self, values, starts, ends):
        out = 0.0
        for k in range(len(starts)):
            if values[starts[k]] == values[ends[k]]:
                out += float(values[starts[k]])
        return out
"""

FIXTURES = {
    "TRX301": (UNTICKED_LOOP, "exec/bad.py"),
    "TRX302": (NO_CHARGE, "exec/bad.py"),
    "TRX303": (UNPROVABLE_HELPER, "exec/bad.py"),
    "TRX401": (SET_ITERATION, "exec/bad.py"),
    "TRX402": (DICT_ITERATION_YIELD, "exec/bad.py"),
    "TRX403": (ID_SORT_KEY, "exec/bad.py"),
    "TRX404": (CLOCK_READ, "exec/bad.py"),
    "TRX501": (FLOAT_EQUALITY, "aggregates/bad.py"),
    "TRX502": (UNGUARDED_ACCUMULATION, "aggregates/bad.py"),
}


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_bad_fixture_detected(code):
    source, relpath = FIXTURES[code]
    report = lint(source, relpath)
    assert code in codes(report), (
        f"{code} fixture not detected; got {codes(report)}")


def test_vector_batch_loop_numeric_rules_fire_in_exec():
    """Numeric-safety rules cover exec/ since the vector kernels landed:
    a batch loop comparing floats bitwise and accumulating unguarded
    must yield both TRX501 and TRX502."""
    report = lint(VECTOR_BATCH_KNIFE_EDGE, "exec/bad_vector.py")
    found = codes(report)
    assert "TRX501" in found, f"TRX501 not detected; got {found}"
    assert "TRX502" in found, f"TRX502 not detected; got {found}"


def test_id_in_comparison_detected():
    assert "TRX403" in codes(lint(ID_COMPARE))


def test_ticked_loop_is_clean():
    report = lint("""
    class GoodOp:
        def eval(self, ctx, sp, refs):
            for segment in self.child.eval(ctx, sp, refs):
                ctx.tick()
                yield segment
    """)
    assert codes(report) == []


def test_charged_accumulation_is_clean():
    report = lint("""
    class GoodOp:
        def eval(self, ctx, sp, refs):
            out = []
            for segment in self.child.eval(ctx, sp, refs):
                ctx.tick()
                if ctx.segment_budget is not None:
                    ctx.charge()
                out.append(segment)
            return out
    """)
    assert codes(report) == []


def test_clock_read_inside_boundary_file_is_clean():
    report = lint(CLOCK_READ, "exec/metrics.py")
    assert "TRX404" not in codes(report)


def test_nan_guarded_accumulation_is_clean():
    report = lint("""
    import math


    class GoodIndex:
        def _sum(self, values):
            total = 0.0
            for value in values:
                if math.isnan(value):
                    continue
                total += float(value)
            return total
    """, "aggregates/good.py")
    assert "TRX502" not in codes(report)


def test_constant_iterable_loop_exempt():
    report = lint("""
    class GoodOp:
        def eval(self, ctx, sp, refs):
            for attr in ("left", "right"):
                self.visit(attr)
            return None
    """)
    assert "TRX301" not in codes(report)


# -- pragma suppression ------------------------------------------------------

def test_reasoned_pragma_suppresses_and_is_recorded():
    report = lint("""
    class BadOp:
        def eval(self, ctx, sp, refs):
            # trex: no-tick(bounded by a test fixture)
            for segment in self.child.eval(ctx, sp, refs):
                yield segment
    """)
    assert codes(report) == []
    pragma = [s for s in report.suppressions if s.kind == "pragma"]
    assert len(pragma) == 1
    assert pragma[0].code == "TRX301"
    assert pragma[0].reason == "bounded by a test fixture"


def test_reasonless_pragma_is_a_finding_and_suppresses_nothing():
    report = lint("""
    class BadOp:
        def eval(self, ctx, sp, refs):
            # trex: no-tick()
            for segment in self.child.eval(ctx, sp, refs):
                yield segment
    """)
    got = codes(report)
    assert "TRX300" in got
    assert "TRX301" in got


def test_unknown_pragma_rule_is_a_finding():
    report = lint("""
    class BadOp:
        def eval(self, ctx, sp, refs):
            # trex: frobnicate(sounds plausible)
            return None
    """)
    assert codes(report) == ["TRX300"]


def test_wrong_rule_pragma_does_not_suppress():
    report = lint("""
    class BadOp:
        def eval(self, ctx, sp, refs):
            # trex: nan-ok(wrong rule for this finding)
            for segment in self.child.eval(ctx, sp, refs):
                yield segment
    """)
    assert "TRX301" in codes(report)


def test_registry_exact_float_site_records_suppression():
    source = """
    class _StdIndex:
        def __init__(self, values):
            total = float(values[0])
            if total == values[0]:
                total = 0.0
            self.total = total
    """
    report = lint(source, "aggregates/basic.py")
    assert "TRX501" not in codes(report)
    registry = [s for s in report.suppressions if s.kind == "registry"]
    assert len(registry) == 1
    assert registry[0].code == "TRX501"
    assert registry[0].reason


# -- baseline round-trip -----------------------------------------------------

def test_baseline_round_trip(tmp_path):
    report = lint(UNTICKED_LOOP)
    assert report.errors > 0
    path = tmp_path / "baseline.json"
    write_baseline(report, str(path))
    entries = load_baseline(str(path))
    assert len(entries) == len(report.findings)
    filtered = apply_baseline(report, entries)
    assert filtered.findings == []
    assert filtered.errors == 0
    assert filtered.files_checked == report.files_checked


def test_baseline_entries_consumed_once(tmp_path):
    double = UNTICKED_LOOP + textwrap.dedent("""
    class WorseOp:
        def eval(self, ctx, sp, refs):
            for segment in self.child.eval(ctx, sp, refs):
                yield segment
    """)
    report = lint(double)
    assert len(codes(report)) == 2
    one_entry = [{"code": diag.code, "file": relpath,
                  "owner": diag.owner or ""}
                 for relpath, diag in report.findings[:1]]
    filtered = apply_baseline(report, one_entry)
    assert len(filtered.findings) == 1


def test_baseline_version_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": BASELINE_VERSION + 1,
                                "entries": []}))
    with pytest.raises(ValueError, match="baseline version"):
        load_baseline(str(path))


# -- renderers and error plumbing --------------------------------------------

def test_render_text_mentions_each_finding():
    report = lint(UNTICKED_LOOP)
    text = render_text(report)
    assert "TRX301" in text
    assert report.summary() in text


def test_render_json_shape():
    report = lint(UNTICKED_LOOP)
    payload = json.loads(render_json(report))
    assert payload["errors"] == report.errors
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["code"] == "TRX301"


def test_render_sarif_shape():
    report = lint(UNTICKED_LOOP)
    sarif = json.loads(render_sarif(report))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "trexlint-engine"
    results = run["results"]
    assert results and results[0]["ruleId"] == "TRX301"
    uri = results[0]["locations"][0]["physicalLocation"][
        "artifactLocation"]["uri"]
    assert uri == "src/repro/exec/bad.py"


def test_engine_lint_error_exit_code_and_kind():
    err = EngineLintError("engine-lint: 1 error(s)", report=None)
    assert exit_code(err) == 10
    assert error_kind(err) == "engine-lint"


# -- repo self-check ---------------------------------------------------------

def test_installed_engine_tree_is_clean():
    """The committed engine sources must pass strict engine lint.

    This is the in-process twin of CI's ``repro lint --engine --strict``
    gate: zero findings, every exemption a reasoned pragma or registry
    entry.
    """
    report = lint_engine()
    assert codes(report) == []
    assert report.files_checked > 20
    assert all(s.reason for s in report.suppressions)
