"""Cross-variable references: the paper's Figure 5 scenario.

Find an upward trend followed, after an arbitrary gap, by a later segment
whose values *correlate* with that trend.  The CORRELATE variable's
condition references the segment matched by UP — T-ReX delivers it through
segment payloads and the ``refs`` argument of ``eval()``; no
post-processing pass is needed.

Run:  python examples/correlated_patterns.py
"""

import numpy as np

from repro import Series, TRexEngine, compile_query

rng = np.random.default_rng(21)
n = 160
noise = rng.normal(0, 0.6, n)
values = np.cumsum(rng.normal(0, 0.5, n)) + 50
# Plant a rising motif and an echoing correlated motif later on.
motif = np.linspace(0, 6, 12) + rng.normal(0, 0.2, 12)
values[30:42] = values[30] + motif
values[90:102] = values[90] + motif * 0.8 + noise[90:102] * 0.1

series = Series({"tstamp": np.arange(float(n)), "x": values}, "tstamp")

QUERY = """
ORDER BY tstamp
PATTERN (UP GAP (CORRELATE & CWIN)) & WINDOW
DEFINE
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.x) >= 0.9,
  SEGMENT GAP AS true,
  SEGMENT CWIN AS window(8, 14),
  SEGMENT CORRELATE AS corr(CORRELATE.x, UP.x) >= :min_corr,
  SEGMENT WINDOW AS window(20, 90)
"""

query = compile_query(QUERY, params={"min_corr": 0.95})
engine = TRexEngine(optimizer="cost")
result = engine.execute_query(query, [series])

print("Physical plan (note the reference flow into CORRELATE):")
print(result.plan_explain)
print()
print(f"{result.total_matches} matches; examples:")
for start, end in result.per_series[0].matches[:5]:
    print(f"  [{start}, {end}]")
