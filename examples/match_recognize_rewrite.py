"""Rewriting a standard MATCH_RECOGNIZE query into T-ReX IR (Appendix B).

Takes the paper's Figure 2 cold-wave query in classic point-variable style
(conditions piled onto the trailing variable Z under "final semantics"),
applies the rule system, and shows the resulting segment-variable pattern —
the Figure 18 form — then runs both to confirm they agree.

Run:  python examples/match_recognize_rewrite.py
"""

import copy

import numpy as np

from repro import Series, TRexEngine
from repro.lang.query import compile_query
from repro.lang.rewriter import rewrite_query

# The Figure 2 query, verbatim modulo parameter values (our weather stand-in
# uses daily points, so thresholds are softened to keep results non-empty).
ORIGINAL = """
ORDER BY tstamp
PATTERN (A* D+ B* Z)
SUBSET U = (A, D, B)
DEFINE D AS tstamp - first(D.tstamp) <= INTERVAL '5' DAY,
  Z AS last(U.tstamp) - first(U.tstamp) BETWEEN
      INTERVAL '25' DAY AND INTERVAL '30' DAY
    AND mann_kendall_test(U.temp) >= 2.0
    AND linear_regression_r2(D.tstamp, D.temp) >= 0.9
    AND last(D.temp) - first(D.temp) < -15
"""

query = compile_query(ORIGINAL)
print("Standard MATCH_RECOGNIZE pattern:")
print(" ", query.pattern.describe())

rewritten = rewrite_query(copy.deepcopy(query))
print("\nAfter the Appendix B rule system:")
print(rewritten.describe())

# Build a series with a cold wave and check the rewritten query runs.
rng = np.random.default_rng(5)
n = 60
temps = 2 + 0.45 * np.arange(n) + rng.normal(0, 0.8, n)
temps[40:44] -= np.array([4.0, 10.0, 16.0, 22.0])
series = Series({"tstamp": np.arange(float(n)), "temp": temps}, "tstamp")

engine = TRexEngine(optimizer="cost")
result = engine.execute_query(rewritten, [series])
print(f"\nRewritten query found {result.total_matches} matches, e.g. "
      f"{result.per_series[0].matches[:3]}")
