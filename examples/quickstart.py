"""Quickstart: find V-shaped price patterns with T-ReX.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Table, find_matches

# 1. Build a table of timestamped records (any columnar source works).
rng = np.random.default_rng(7)
days = np.arange(120.0)
price = 100 * np.exp(np.cumsum(rng.normal(0.0, 0.02, size=len(days))))
# Plant an obvious V: ten falling days followed by ten rising days.
price[40:50] *= np.linspace(1.0, 0.75, 10)
price[50:60] *= np.linspace(0.75, 1.05, 10)

table = Table({
    "tstamp": np.tile(days, 1),
    "ticker": np.asarray(["ACME"] * len(days), dtype=object),
    "price": price,
}, time_unit="DAY")

# 2. Write a pattern query.  Segment variables (DEFINE SEGMENT) match
#    variable-length runs of points; `&` conjoins conditions on the same
#    segment and juxtaposition concatenates segments.
QUERY = """
PARTITION BY ticker
ORDER BY tstamp
PATTERN ((DOWN & LEG) (UP & LEG)) & WINDOW
DEFINE
  SEGMENT LEG  AS window(4, null),              -- each leg >= 4 days
  SEGMENT DOWN AS linear_reg_r2_signed(DOWN.tstamp, DOWN.price) <= -:fit,
  SEGMENT UP   AS linear_reg_r2_signed(UP.tstamp, UP.price) >= :fit,
  SEGMENT WINDOW AS window(8, :max_days)        -- whole V inside a window
"""

# 3. Execute.  The engine parses, rewrites, optimizes (cost-based, with
#    search-space pruning) and runs the query.
result = find_matches(table, QUERY, params={"fit": 0.85, "max_days": 30})

print(result.summary())
print()
print("Chosen physical plan:")
print(result.plan_explain)
print()
for key, matches in result.matches_by_key().items():
    print(f"{key}: {len(matches)} V-shapes; first few: {matches[:5]}")
