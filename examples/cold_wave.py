"""The paper's running example: cold waves in historical temperatures.

Finds occurrences of a steep multi-day temperature drop embedded in a
multi-week monotone warm-up (Figures 1a & 3), then shows why T-ReX is fast:
the optimizer uses the cheap, selective FALL condition to prune the search
space of the expensive Mann-Kendall trend test.

Run:  python examples/cold_wave.py
"""

import time

from repro import TRexEngine
from repro.datasets import weather
from repro.queries import get_template

# Synthetic stand-in for the paper's Weather dataset: 36 cities of daily
# temperatures with injected cold waves (see DESIGN.md §4).
table = weather(num_series=6, length=500)

template = get_template("cld_wave")
params = {"fall_diff": 18, "down_r2_min": 0.9}
query = template.compile(params)
print(query.describe())
print()

series_list = table.partition(query.partition_by, query.order_by)

engine = TRexEngine(optimizer="cost", sharing="auto")
t0 = time.perf_counter()
result = engine.execute_query(query, series_list)
optimized = time.perf_counter() - t0

print("Optimized plan:")
print(result.plan_explain)
print()
print(f"T-ReX:        {result.total_matches:4d} cold waves "
      f"in {optimized:6.2f}s")

# Compare against batch mode (probe operators disabled — every operator
# works on the whole series' search space, Section 6.3).
batch = TRexEngine(optimizer="batch", sharing="auto")
t0 = time.perf_counter()
batch_result = batch.execute_query(query, series_list)
batch_seconds = time.perf_counter() - t0
print(f"T-ReX Batch:  {batch_result.total_matches:4d} cold waves "
      f"in {batch_seconds:6.2f}s "
      f"({batch_seconds / max(optimized, 1e-9):.1f}x slower)")
assert batch_result.matches_by_key() == result.matches_by_key()

for entry in result.per_series:
    if entry.matches:
        start, end = entry.matches[0]
        print(f"  e.g. {'/'.join(map(str, entry.key))}: cold wave over "
              f"days [{start}, {end}]")
        break
