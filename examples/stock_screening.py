"""Stock screening: negation and multi-segment chart patterns.

Two realistic screens over (synthetic) S&P 500 daily prices:

* ``limit_sell`` — stocks that rose by a target ratio with *no*
  intermediate crash, using T-ReX's Not (~) operator;
* ``head_shldr`` — the classic head-and-shoulders chart pattern, a
  seven-segment concatenation with ratio conditions.

Run:  python examples/stock_screening.py
"""

import time

from repro import TRexEngine
from repro.datasets import sp500
from repro.queries import get_template

table = sp500(num_series=40, length=252)
engine = TRexEngine(optimizer="cost", sharing="auto")

# -- Screen 1: sustained rise without a crash (Not operator) ----------------
limit_sell = get_template("limit_sell")
query = limit_sell.compile({"rise_ratio": 1.25, "fall_ratio": 0.85,
                            "total_window_size": 60})
series_list = table.partition(query.partition_by, query.order_by)

t0 = time.perf_counter()
result = engine.execute_query(query, series_list)
print(f"limit_sell: {result.total_matches} windows with a >=25% rise and "
      f"no >=15% drawdown ({time.perf_counter() - t0:.2f}s)")
winners = [entry.key[0] for entry in result.per_series if entry.matches]
print(f"  tickers: {winners[:10]}{' ...' if len(winners) > 10 else ''}")
print()

# -- Screen 2: head and shoulders -------------------------------------------
head_shldr = get_template("head_shldr")
query = head_shldr.compile({"t": 0.6, "total_window_size": 60,
                            "r1": 1.02, "r2": 1.0})
series_list = table.partition(query.partition_by, query.order_by)

t0 = time.perf_counter()
result = engine.execute_query(query, series_list)
print(f"head_shldr: {result.total_matches} head-and-shoulders occurrences "
      f"({time.perf_counter() - t0:.2f}s)")
for entry in result.per_series:
    for start, end in entry.matches[:1]:
        print(f"  {entry.key[0]}: days [{start}, {end}]")
