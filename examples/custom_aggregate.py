"""User-defined aggregates with computation sharing.

Registers a custom ``range_ratio`` aggregate (max/min over a segment) with
an ``index()`` implementation, annotates its cost shapes, and uses it in a
query — the optimizer treats it exactly like a built-in (Appendix D.2).

Run:  python examples/custom_aggregate.py
"""

import numpy as np

from repro import Series, TRexEngine
from repro.aggregates.base import Aggregate, AggregateIndex
from repro.aggregates.prefix import SparseTable
from repro.aggregates.registry import AggregateRegistry, DEFAULT_REGISTRY
from repro.lang.query import compile_query


class _RangeRatioIndex(AggregateIndex):
    """Sparse tables give O(1) range min/max lookups."""

    def __init__(self, values):
        self._min = SparseTable(values, "min")
        self._max = SparseTable(values, "max")

    def lookup(self, start, end):
        lowest = self._min.query(start, end)
        if lowest <= 0:
            return float("inf")
        return self._max.query(start, end) / lowest


class RangeRatio(Aggregate):
    """max(segment) / min(segment) — a volatility measure."""

    name = "range_ratio"
    num_columns = 1
    num_extra = 0
    direct_cost_shape = "L"   # one pass over the segment
    index_cost_shape = "L"    # sparse-table build is ~linear
    lookup_cost_shape = "C"   # O(1) lookups

    def evaluate(self, arrays, extra):
        (values,) = arrays
        values = np.asarray(values, dtype=np.float64)
        lowest = float(np.min(values))
        if lowest <= 0:
            return float("inf")
        return float(np.max(values)) / lowest

    def build_index(self, columns, extra):
        (values,) = columns
        return _RangeRatioIndex(np.asarray(values, dtype=np.float64))


# Register into a private registry (DEFAULT_REGISTRY works too, but keeping
# a dedicated registry avoids cross-example interference).
registry = AggregateRegistry()
for name in DEFAULT_REGISTRY.names():
    try:
        registry.register(DEFAULT_REGISTRY.get(name))
    except Exception:
        pass  # aliases resolve to already-registered aggregates
registry.register(RangeRatio())

rng = np.random.default_rng(3)
values = 100 + np.cumsum(rng.normal(0, 1.0, 200))
series = Series({"tstamp": np.arange(200.0), "price": values}, "tstamp")

QUERY = """
ORDER BY tstamp
PATTERN (CALM VOLATILE) & WINDOW
DEFINE
  SEGMENT CALM AS range_ratio(CALM.price) < 1.02 AND window(5, 20),
  SEGMENT VOLATILE AS range_ratio(VOLATILE.price) > 1.06 AND window(5, 20),
  SEGMENT WINDOW AS window(10, 40)
"""

query = compile_query(QUERY, registry=registry)
result = TRexEngine(optimizer="cost", sharing="auto").execute_query(
    query, [series])
print(result.plan_explain)
print(f"\n{result.total_matches} calm-then-volatile transitions; "
      f"first few: {result.per_series[0].matches[:5]}")
print(f"index builds: {result.stats.get('index_builds', 0)}, "
      f"index lookups: {result.stats.get('index_lookups', 0)}")
